"""Trace-driven workloads: ``trace:<name-or-path>`` in the workload registry.

A :class:`TraceWorkload` plugs into every surface that accepts a
benchmark — ``repro.api.simulate``, campaign specs, the CLIs — and
yields :class:`~repro.core.trace.TraceEntry` streams exactly like
:class:`~repro.workloads.synthetic.SyntheticTraceGenerator`, including
the per-core address-offset contract (cores get disjoint address spaces;
the offset is added to every line address at iteration time and never
stored in the file).

**Spec syntax**::

    trace:<name-or-path>[?knob=value[,knob=value...]]

Knobs: ``start`` (first record, default 0), ``limit`` (records per pass,
0 = to end of trace), ``loop`` (1 default: wrap around so a short trace
fills a long run deterministically; 0: the core finishes when the trace
ends).  ``&`` also separates knobs, for surfaces that split benchmark
lists on commas (``--benchmarks swim,trace:mcf?start=100&loop=0``).

``<name-or-path>`` resolves in order against (1) names registered with
:func:`register_trace`, (2) ``<name>.rtr`` files in the directories of
``$REPRO_TRACE_PATH`` (colon-separated), (3) a literal filesystem path.
Unknown names fail loudly with nearest-match suggestions — campaign
specs surface that error at validation time, before any job runs.

**Identity contract** (DESIGN.md §13): a TraceWorkload hashes by the
trace's embedded *content digest* plus its windowing knobs.  The ``path``
and display ``name`` carry ``exclude_from_hash`` metadata, so the same
trace at two paths shares cache entries and an edited trace invalidates
them — the same field-level mechanism that excludes the backend knob.
"""

from __future__ import annotations

import difflib
import os
from dataclasses import dataclass, field
from itertools import chain
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.trace import TraceEntry
from repro.trace.format import (
    TRACE_SUFFIX,
    TraceFormatError,
    TraceHeader,
    TraceReader,
    probe_header,
)

TRACE_PREFIX = "trace:"
TRACE_PATH_ENV = "REPRO_TRACE_PATH"

_KNOWN_KNOBS = ("limit", "loop", "start")

PathLike = Union[str, Path]


class TraceLookupError(ValueError):
    """A trace spec failed to parse or resolve; the message says how to fix it."""


# -- the name registry --------------------------------------------------------

_REGISTRY: Dict[str, str] = {}


def register_trace(name: str, path: PathLike) -> None:
    """Bind ``trace:<name>`` to a trace file for this process.

    The file must exist and carry a valid header — registration fails
    loudly rather than deferring the error to simulation time.
    """
    if not name or not all(c.isalnum() or c in "._-" for c in name):
        raise TraceLookupError(
            f"trace name {name!r} must be non-empty and use only letters, "
            "digits, '.', '_' or '-'"
        )
    probe_header(path)  # raises TraceFormatError on anything unreadable
    _REGISTRY[name] = str(path)


def unregister_traces() -> None:
    """Clear the in-process registry (test isolation)."""
    _REGISTRY.clear()


def _search_dirs() -> List[Path]:
    raw = os.environ.get(TRACE_PATH_ENV, "")
    return [Path(part).expanduser() for part in raw.split(os.pathsep) if part]


def discovered_traces() -> Dict[str, str]:
    """Name → path of every trace reachable by name right now.

    Registered names first, then ``*.rtr`` files found in
    ``$REPRO_TRACE_PATH`` directories (first hit wins, mirroring how
    ``$PATH`` works).
    """
    found: Dict[str, str] = dict(_REGISTRY)
    for directory in _search_dirs():
        try:
            candidates = sorted(directory.glob("*" + TRACE_SUFFIX))
        except OSError:
            continue
        for candidate in candidates:
            found.setdefault(candidate.stem, str(candidate))
    return found


# -- spec parsing -------------------------------------------------------------


def _suggest(name: str, known) -> str:
    close = difflib.get_close_matches(name, list(known), n=3)
    return f" (did you mean {', '.join(close)}?)" if close else ""


def parse_trace_spec(spec: str) -> Tuple[str, Dict[str, int]]:
    """Split ``trace:<token>?knobs`` into the token and validated knobs."""
    if not spec.startswith(TRACE_PREFIX):
        raise TraceLookupError(
            f"{spec!r} is not a trace spec (expected a {TRACE_PREFIX!r} prefix)"
        )
    body = spec[len(TRACE_PREFIX) :]
    token, _, options = body.partition("?")
    if not token:
        raise TraceLookupError(
            f"{spec!r}: empty trace name; use trace:<name-or-path>"
        )
    knobs: Dict[str, int] = {}
    if options:
        # "&" is an alternate knob separator for surfaces that split
        # benchmark lists on commas (e.g. --benchmarks a,trace:b?start=1).
        for part in options.replace("&", ",").split(","):
            key, separator, value = part.partition("=")
            key = key.strip()
            if not separator or key not in _KNOWN_KNOBS:
                raise TraceLookupError(
                    f"{spec!r}: unknown trace knob {key!r}"
                    f"{_suggest(key, _KNOWN_KNOBS)}; known knobs: "
                    f"{', '.join(_KNOWN_KNOBS)} (e.g. trace:name?start=0,loop=1)"
                )
            try:
                knobs[key] = int(value)
            except ValueError:
                raise TraceLookupError(
                    f"{spec!r}: trace knob {key}={value!r} is not an integer"
                ) from None
    start = knobs.get("start", 0)
    limit = knobs.get("limit", 0)
    loop = knobs.get("loop", 1)
    if start < 0:
        raise TraceLookupError(f"{spec!r}: start must be >= 0, got {start}")
    if limit < 0:
        raise TraceLookupError(f"{spec!r}: limit must be >= 0 (0 = to end), got {limit}")
    if loop not in (0, 1):
        raise TraceLookupError(f"{spec!r}: loop must be 0 or 1, got {loop}")
    return token, {"start": start, "limit": limit, "loop": loop}


def _locate(token: str, spec: str) -> str:
    known = discovered_traces()
    if token in known:
        return known[token]
    candidate = Path(token).expanduser()
    if candidate.is_file():
        return str(candidate)
    # Build the suggestion pool: reachable names plus .rtr siblings of a
    # path-looking token (the classic typo is one directory level off).
    pool = set(known)
    if candidate.parent != Path("."):
        try:
            pool.update(str(p) for p in candidate.parent.glob("*" + TRACE_SUFFIX))
        except OSError:
            pass
    hint = (
        f"; known traces: {', '.join(sorted(known))}"
        if known
        else (
            "; no traces are registered — convert one with "
            "'python -m repro.trace convert' and point $REPRO_TRACE_PATH "
            "at its directory (or pass its path)"
        )
    )
    raise TraceLookupError(
        f"{spec!r}: unknown trace {token!r}{_suggest(token, pool)}{hint}"
    )


# -- the workload -------------------------------------------------------------


@dataclass(frozen=True)
class TraceWorkload:
    """One file-backed workload, identified by content digest.

    ``digest``/``start``/``limit``/``loop`` are the identity (what the
    cache key hashes); ``name`` and ``path`` are presentation and
    location, excluded from hashing at the field — two spellings of the
    same content are the same workload.
    """

    digest: str
    start: int = 0
    limit: int = 0  # 0 = to end of trace
    loop: bool = True
    name: str = field(default="trace", metadata={"exclude_from_hash": True})
    path: str = field(default="", metadata={"exclude_from_hash": True})

    def __post_init__(self):
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.limit < 0:
            raise ValueError(f"limit must be >= 0, got {self.limit}")

    def header(self) -> TraceHeader:
        return probe_header(self.path)

    def window_entries(self) -> int:
        """Records in one pass of the configured window."""
        total = self.header().entries
        available = max(0, total - self.start)
        return min(available, self.limit) if self.limit else available

    def entries(self, offset: int = 0) -> Iterator[TraceEntry]:
        """Yield the windowed record stream, ``offset`` added to addresses.

        With ``loop`` the stream restarts from ``start`` each time the
        window is exhausted (an infinite iterator, like the synthetic
        generator); without it the stream ends and the core finishes
        early.  Deterministic: replaying a trace involves no randomness,
        so the simulation seed does not perturb it.  Flattened from
        :meth:`entry_batches` through the C chain iterator, so the
        per-access ``next(core.trace)`` hop never resumes a Python
        generator frame per record (DESIGN.md §15).
        """
        return chain.from_iterable(self.entry_batches(offset))

    def entry_batches(self, offset: int = 0) -> Iterator[List[TraceEntry]]:
        """The batch form of :meth:`entries`: one list per trace block."""
        header = probe_header(self.path)
        if header.digest != self.digest:
            raise TraceFormatError(
                f"{self.path}: content digest {header.digest[:16]}... does not "
                f"match this workload's {self.digest[:16]}... — the file "
                "changed after the workload was resolved"
            )
        window = self.window_entries()
        if window <= 0:
            return
        limit = self.limit if self.limit else None
        reader = TraceReader(self.path)
        start = self.start
        while True:
            for batch in reader.entry_batches(
                start=start, limit=limit, offset=offset
            ):
                yield batch
            if not self.loop:
                return


def resolve_trace(spec: str, *, name: Optional[str] = None) -> TraceWorkload:
    """Resolve a ``trace:`` spec (or bare path) into a :class:`TraceWorkload`.

    Reads the file's embedded content digest, which becomes the
    workload's cache identity.  Raises :class:`TraceLookupError` (spec or
    lookup problems) or :class:`~repro.trace.format.TraceFormatError`
    (the file is not a readable trace).
    """
    if not spec.startswith(TRACE_PREFIX):
        spec = TRACE_PREFIX + spec
    token, knobs = parse_trace_spec(spec)
    path = _locate(token, spec)
    header = probe_header(path)
    return TraceWorkload(
        digest=header.digest,
        start=knobs["start"],
        limit=knobs["limit"],
        loop=bool(knobs["loop"]),
        name=name if name is not None else token,
        path=path,
    )


def validate_trace_spec(spec: str) -> TraceWorkload:
    """Campaign-validation entry point: parse, resolve and probe one spec.

    Returns the resolved workload so callers can report its digest; any
    failure raises with an actionable, did-you-mean-style message before
    a single job runs.
    """
    return resolve_trace(spec)
