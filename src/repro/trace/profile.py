"""Measure a trace and derive a synthetic :class:`BenchmarkProfile` from it.

The existing calibration flow (DESIGN.md §2) tunes per-benchmark profile
knobs — APKI, stream fraction, run length, working set, reuse — by hand
against published numbers.  :func:`measure_trace` computes the same
quantities directly from a recorded trace, and :func:`profile_from_trace`
maps them onto a :class:`~repro.workloads.profiles.BenchmarkProfile`, so
a real trace can seed the synthetic generator (e.g. to extrapolate a
short capture to arbitrary lengths, or to add a measured workload to the
campaign population).

Stream detection mirrors what a hardware stream prefetcher would see: a
small table of recent stream heads; an access that extends a tracked
head by +1 line counts as sequential and extends that run.  Working-set
size is the exact distinct-line count up to a cap (``ws_cap``), beyond
which it is reported as the cap (the profile knob saturates long before
that matters).  Everything runs in one streaming pass, constant memory
apart from the bounded distinct-line set.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.trace.format import read_trace
from repro.workloads.profiles import BenchmarkProfile

_STREAM_TABLE = 16
_RECENT = 64
_WS_CAP = 1 << 22  # 4M distinct lines = 256 MiB of 64B lines; plenty


@dataclass(frozen=True)
class TraceStats:
    """Measured properties of one trace (window)."""

    entries: int
    instructions: int
    apki: float
    stream_fraction: float
    run_length: float
    num_streams: int
    ws_lines: int
    ws_capped: bool
    reuse_fraction: float
    write_fraction: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "entries": self.entries,
            "instructions": self.instructions,
            "apki": round(self.apki, 4),
            "stream_fraction": round(self.stream_fraction, 4),
            "run_length": round(self.run_length, 2),
            "num_streams": self.num_streams,
            "ws_lines": self.ws_lines,
            "ws_capped": self.ws_capped,
            "reuse_fraction": round(self.reuse_fraction, 4),
            "write_fraction": round(self.write_fraction, 4),
        }


def measure_trace(
    path,
    *,
    start: int = 0,
    limit: Optional[int] = None,
    ws_cap: int = _WS_CAP,
) -> TraceStats:
    """One streaming pass of measurement over a trace (window)."""
    streams: "OrderedDict[int, int]" = OrderedDict()  # next line -> run length
    finished_runs = 0
    finished_run_lines = 0
    live_streams_peak = 0
    recent: deque = deque(maxlen=_RECENT)
    recent_set: set = set()
    distinct: set = set()
    ws_capped = False
    entries = 0
    instructions = 0
    writes = 0
    stream_hits = 0
    reuse_hits = 0
    random_accesses = 0
    for entry in read_trace(path, start=start, limit=limit):
        entries += 1
        instructions += entry.gap
        if entry.is_write:
            writes += 1
        line = entry.line_addr
        run = streams.pop(line, None)
        if run is not None:
            # Extends a tracked stream: sequential access.
            stream_hits += 1
            streams[line + 1] = run + 1
            live_streams_peak = max(live_streams_peak, len(streams))
        else:
            random_accesses += 1
            if line in recent_set:
                reuse_hits += 1
            # Start (or restart) a stream context at this line; evict the
            # least-recently-extended head when the table is full.
            if len(streams) >= _STREAM_TABLE:
                _, evicted_run = streams.popitem(last=False)
                if evicted_run > 1:
                    finished_runs += 1
                    finished_run_lines += evicted_run
            streams[line + 1] = 1
        if len(recent) == _RECENT:
            oldest = recent[0]
            recent.append(line)
            if oldest not in recent:
                recent_set.discard(oldest)
            recent_set.add(line)
        else:
            recent.append(line)
            recent_set.add(line)
        if not ws_capped:
            distinct.add(line)
            if len(distinct) >= ws_cap:
                ws_capped = True
    for run in streams.values():
        if run > 1:
            finished_runs += 1
            finished_run_lines += run
    mean_run = (finished_run_lines / finished_runs) if finished_runs else 1.0
    return TraceStats(
        entries=entries,
        instructions=instructions,
        apki=(1000.0 * entries / instructions) if instructions else 0.0,
        stream_fraction=(stream_hits / entries) if entries else 0.0,
        run_length=mean_run,
        num_streams=max(1, min(live_streams_peak, _STREAM_TABLE)),
        ws_lines=len(distinct),
        ws_capped=ws_capped,
        reuse_fraction=(reuse_hits / random_accesses) if random_accesses else 0.0,
        write_fraction=(writes / entries) if entries else 0.0,
    )


def profile_from_trace(
    path,
    *,
    name: Optional[str] = None,
    pf_class: int = 1,
    start: int = 0,
    limit: Optional[int] = None,
) -> BenchmarkProfile:
    """Derive a generator profile whose knobs match the measured trace.

    The result feeds the existing calibration flow unchanged: it is a
    plain :class:`BenchmarkProfile`, usable anywhere a named benchmark
    is (``simulate``, campaign ``Workload`` entries, mixes).  Values are
    clamped to the profile's validity ranges (``apki > 0``,
    ``run_length >= 2``).
    """
    stats = measure_trace(path, start=start, limit=limit)
    from pathlib import Path as _Path

    return BenchmarkProfile(
        name=name or ("trace_" + _Path(str(path)).stem),
        pf_class=pf_class,
        apki=max(stats.apki, 0.01),
        stream_fraction=min(1.0, max(0.0, stats.stream_fraction)),
        run_length=max(2, int(round(stats.run_length))),
        num_streams=stats.num_streams,
        ws_lines=max(1, stats.ws_lines),
        reuse_fraction=min(1.0, max(0.0, stats.reuse_fraction)),
        write_fraction=min(1.0, max(0.0, stats.write_fraction)),
    )
