"""Real-trace ingestion: binary trace format, converters, trace workloads.

The trace subsystem (DESIGN.md §13) is the input layer that replaces
synthetic profile generation with recorded program behavior:

* :mod:`repro.trace.format` — the ``.rtr`` binary format: versioned
  64-byte header with an embedded SHA-256 content digest, delta-encoded
  varint-packed records in CRC-checked blocks, mmap-backed streaming
  decode in constant memory.
* :mod:`repro.trace.convert` — converters from ChampSim-style and
  gem5-style L2-access dumps (plus the legacy gzip text format).
* :mod:`repro.trace.workload` — :class:`TraceWorkload` and the
  ``trace:<name-or-path>`` spec syntax accepted everywhere a benchmark
  name is; hashes by content digest, never by path.
* :mod:`repro.trace.profile` — measure a trace and derive a
  :class:`~repro.workloads.profiles.BenchmarkProfile` from it.

CLI: ``python -m repro.trace`` (convert / info / validate / head /
profile / synth).
"""

from repro.trace.convert import CONVERTERS, ConvertError, convert, sniff_dialect
from repro.trace.format import (
    DEFAULT_BLOCK_ENTRIES,
    FORMAT_VERSION,
    TRACE_SUFFIX,
    TraceFormatError,
    TraceHeader,
    TraceReader,
    TraceWriter,
    probe_header,
    read_trace,
    trace_digest,
    validate_trace,
    write_trace,
)
from repro.trace.profile import TraceStats, measure_trace, profile_from_trace
from repro.trace.workload import (
    TRACE_PREFIX,
    TRACE_PATH_ENV,
    TraceLookupError,
    TraceWorkload,
    discovered_traces,
    parse_trace_spec,
    register_trace,
    resolve_trace,
    unregister_traces,
    validate_trace_spec,
)

__all__ = [
    "CONVERTERS",
    "ConvertError",
    "DEFAULT_BLOCK_ENTRIES",
    "FORMAT_VERSION",
    "TRACE_PATH_ENV",
    "TRACE_PREFIX",
    "TRACE_SUFFIX",
    "TraceFormatError",
    "TraceHeader",
    "TraceLookupError",
    "TraceReader",
    "TraceStats",
    "TraceWorkload",
    "TraceWriter",
    "convert",
    "discovered_traces",
    "measure_trace",
    "parse_trace_spec",
    "probe_header",
    "profile_from_trace",
    "read_trace",
    "register_trace",
    "resolve_trace",
    "sniff_dialect",
    "trace_digest",
    "unregister_traces",
    "validate_trace",
    "validate_trace_spec",
    "write_trace",
]
