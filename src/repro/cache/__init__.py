"""Last-level cache substrate: set-associative L2 with prefetch bits, MSHRs.

The paper's prefetchers fill into the L2 (the last-level cache of its
processor model); the L1s are absorbed into the workload traces, which are
streams of *L2 accesses*.  Each line carries the P bit used by the
prefetch-accuracy measurement (paper §4.1) and by the prefetch filters.
"""

from repro.cache.cache import CacheLine, EvictionInfo, L2Cache, LookupResult
from repro.cache.mshr import MSHR, MSHREntry

__all__ = [
    "CacheLine",
    "EvictionInfo",
    "L2Cache",
    "LookupResult",
    "MSHR",
    "MSHREntry",
]
