"""Miss Status Holding Registers.

The MSHR file tracks in-flight line fills.  It is where a demand request
can *match* an in-flight prefetch: the prefetch is promoted (P bit reset,
PUC incremented) and the demand simply waits for the existing fill —
paper §4.1 item 1 and footnote 9.
"""

from __future__ import annotations

from typing import Dict, List, Optional, ValuesView

from repro.controller.request import MemRequest


class MSHREntry:
    """One in-flight miss: the memory request plus waiting cores."""

    __slots__ = (
        "line_addr",
        "request",
        "waiters",
        "was_prefetch",
        "promoted_late",
        "dirty_on_fill",
    )

    def __init__(self, line_addr: int, request: MemRequest):
        self.line_addr = line_addr
        self.request = request
        self.waiters: List[int] = []
        self.was_prefetch = request.is_prefetch
        # True when a demand matched this prefetch while in flight — the
        # prefetch was useful but *late* (used by FDP's lateness metric).
        self.promoted_late = False
        # A store merged into this miss: the line fills dirty
        # (write-allocate) and writes back to DRAM on eviction.
        self.dirty_on_fill = False


class MSHR:
    """A fixed-capacity file of in-flight misses, indexed by line address."""

    def __init__(self, entries: int):
        self.capacity = entries
        self._entries: Dict[int, MSHREntry] = {}
        self.allocation_failures = 0
        # Lifetime counters: occupancy must always equal
        # total_allocated - total_freed (audited by repro.validate).
        self.total_allocated = 0
        self.total_freed = 0
        # High-water mark since the telemetry layer last sampled it (one
        # compare per allocation; the collector resets it per interval).
        self.peak_occupancy = 0

    def get(self, line_addr: int) -> Optional[MSHREntry]:
        return self._entries.get(line_addr)

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._entries

    def allocate(self, line_addr: int, request: MemRequest) -> Optional[MSHREntry]:
        """Allocate an entry; returns None when the file is full."""
        if len(self._entries) >= self.capacity:
            self.allocation_failures += 1
            return None
        if line_addr in self._entries:
            raise ValueError(f"duplicate MSHR allocation for line 0x{line_addr:x}")
        entry = MSHREntry(line_addr, request)
        self._entries[line_addr] = entry
        self.total_allocated += 1
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)
        return entry

    def free(self, line_addr: int) -> Optional[MSHREntry]:
        """Release the entry (on fill completion or prefetch drop)."""
        entry = self._entries.pop(line_addr, None)
        if entry is not None:
            self.total_freed += 1
        return entry

    def entries(self) -> ValuesView[MSHREntry]:
        """Live view of the in-flight entries (used by validation).

        Returns the dict's values view — an O(1) handle, not a list
        copy.  Callers iterate it read-only; anyone who mutates the MSHR
        while iterating must materialize it first (``list(...)``).
        """
        return self._entries.values()

    @property
    def occupancy(self) -> int:
        # len() of a dict is O(1); no snapshotting or rebuild involved.
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity
