"""Set-associative L2 cache with LRU replacement and per-line P bits.

Each :class:`CacheLine` records whether the line was brought in by a
prefetch (the P bit, cleared on the first demand hit — paper §4.1), which
core prefetched it, and whether its DRAM service was a row hit (used for
the RBHU metric of §6.1.1).

Hot-path layout (DESIGN.md §15): each set is a plain insertion-ordered
``dict`` (LRU at the front, MRU at the back).  Recency updates are
*intrusive* — ``pop`` + reinsert moves a line to the MRU end in two C
dict operations, and eviction takes the front key via ``next(iter(...))``
— which measures faster than the former ``OrderedDict`` (its
``popitem(last=False)`` pays for doubly-linked-list bookkeeping the plain
dict does not carry).  ``lookup`` returns shared singletons for the two
overwhelmingly common outcomes so a demand access allocates nothing; the
simulation backends inline the same protocol and never build a
:class:`LookupResult` at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.params import CacheConfig


class CacheLine:
    """Metadata for one resident cache line."""

    __slots__ = ("prefetched", "core_id", "row_hit_fill", "ever_used", "dirty")

    def __init__(
        self,
        prefetched: bool,
        core_id: int,
        row_hit_fill: bool,
        dirty: bool = False,
    ):
        self.prefetched = prefetched
        self.core_id = core_id
        self.row_hit_fill = row_hit_fill
        self.ever_used = not prefetched
        self.dirty = dirty


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a demand lookup."""

    hit: bool
    first_use_of_prefetch: bool = False
    prefetch_core: Optional[int] = None
    prefetch_row_hit_fill: bool = False


@dataclass(frozen=True)
class EvictionInfo:
    """Describes a line evicted by a fill (for filter training/writeback)."""

    line_addr: int
    prefetched_unused: bool
    core_id: int
    dirty: bool = False


# Shared singleton results for the two overwhelmingly common lookup
# outcomes (the dataclass is frozen, so sharing is safe): a plain hit and
# a miss allocate nothing.
_PLAIN_HIT = LookupResult(hit=True)
_MISS = LookupResult(hit=False)


class L2Cache:
    """LRU set-associative cache tracking prefetch usefulness per line."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.num_sets = config.num_sets
        if self.num_sets < 1:
            raise ValueError("cache too small for its associativity/line size")
        self.assoc = config.associativity
        self._sets: List[Dict[int, CacheLine]] = [
            {} for _ in range(self.num_sets)
        ]
        self.demand_hits = 0
        self.demand_misses = 0
        self.useful_prefetch_hits = 0

    def _set_for(self, line_addr: int) -> Dict[int, CacheLine]:
        return self._sets[line_addr % self.num_sets]

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._set_for(line_addr)

    def lookup(self, line_addr: int, is_write: bool = False) -> LookupResult:
        """Demand lookup: updates LRU and clears the P bit on first use.

        A write hit marks the line dirty; the dirty line generates a
        writeback to DRAM when it is eventually evicted.
        """
        cache_set = self._sets[line_addr % self.num_sets]
        line = cache_set.pop(line_addr, None)
        if line is None:
            self.demand_misses += 1
            return _MISS
        cache_set[line_addr] = line  # reinsert at the MRU end
        self.demand_hits += 1
        if is_write:
            line.dirty = True
        if line.prefetched and not line.ever_used:
            line.ever_used = True
            line.prefetched = False
            self.useful_prefetch_hits += 1
            return LookupResult(
                hit=True,
                first_use_of_prefetch=True,
                prefetch_core=line.core_id,
                prefetch_row_hit_fill=line.row_hit_fill,
            )
        return _PLAIN_HIT

    def touch_for_prefetcher(self, line_addr: int) -> bool:
        """Presence probe that does not disturb LRU or the P bit."""
        return line_addr in self._sets[line_addr % self.num_sets]

    def fill(
        self,
        line_addr: int,
        prefetched: bool,
        core_id: int,
        row_hit_fill: bool = False,
        dirty: bool = False,
    ) -> Optional[EvictionInfo]:
        """Insert a line; returns eviction info when a victim is replaced."""
        cache_set = self._sets[line_addr % self.num_sets]
        line = cache_set.pop(line_addr, None)
        if line is not None:
            # Already present (e.g. a redundant fill); refresh LRU only.
            cache_set[line_addr] = line
            if dirty:
                line.dirty = True
            return None
        evicted = None
        if len(cache_set) >= self.assoc:
            victim_addr = next(iter(cache_set))
            victim = cache_set.pop(victim_addr)
            evicted = EvictionInfo(
                line_addr=victim_addr,
                prefetched_unused=victim.prefetched and not victim.ever_used,
                core_id=victim.core_id,
                dirty=victim.dirty,
            )
        cache_set[line_addr] = CacheLine(prefetched, core_id, row_hit_fill, dirty)
        return evicted

    def invalidate(self, line_addr: int) -> bool:
        """Remove a line if present (used by tests and failure injection)."""
        cache_set = self._set_for(line_addr)
        return cache_set.pop(line_addr, None) is not None

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def unused_prefetched_by_core(self) -> Dict[int, int]:
        """Count of resident never-used prefetched lines, per owning core.

        Used by checked mode to close the pf_sent conservation law:
        every sent prefetch is dropped, used, evicted unused, in flight,
        or sitting in the cache with its P bit still set.
        """
        counts: Dict[int, int] = {}
        for cache_set in self._sets:
            for line in cache_set.values():
                if line.prefetched and not line.ever_used:
                    counts[line.core_id] = counts.get(line.core_id, 0) + 1
        return counts

    def hit_rate(self) -> float:
        total = self.demand_hits + self.demand_misses
        return self.demand_hits / total if total else 0.0
