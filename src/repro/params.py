"""Configuration dataclasses for every subsystem of the PADC reproduction.

All times are expressed in *processor cycles*.  The baseline follows the
paper's Table 3/4 configuration: a 4 GHz-class core clock against DDR3-1333
DRAM whose 15 ns command latencies become 60-cycle latencies.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple


@dataclass(frozen=True)
class DRAMTimings:
    """DDR3-style command latencies, in processor cycles.

    The paper uses 15 ns per command (precharge tRP, activate tRCD,
    read/write CL) on a DDR3-1333 part; at a 4 GHz core clock that is 60
    cycles per command.  A 64-byte line on a 16B-wide DDR bus with BL=4
    occupies the data bus for 3 ns = 12 cycles.
    """

    t_rp: int = 60
    t_rcd: int = 60
    cl: int = 60
    burst: int = 12
    # True (default, DDR3-faithful): column accesses pipeline with earlier
    # bursts, so a bank with an open row streams at full bus rate — this
    # is what makes row-buffer locality worth fighting for.  False: the
    # column access serializes per bank (one line per CL per bank).
    pipelined_cas: bool = True

    @property
    def row_hit_latency(self) -> int:
        """Latency of an access that hits the open row (read/write only)."""
        return self.cl

    @property
    def row_closed_latency(self) -> int:
        """Latency when no row is open (activate + read/write)."""
        return self.t_rcd + self.cl

    @property
    def row_conflict_latency(self) -> int:
        """Latency when a different row is open (precharge+activate+rw)."""
        return self.t_rp + self.t_rcd + self.cl


@dataclass(frozen=True)
class DRAMConfig:
    """Shape and policy of the DRAM subsystem (paper Table 4)."""

    timings: DRAMTimings = field(default_factory=DRAMTimings)
    num_channels: int = 1
    banks_per_channel: int = 8
    row_buffer_bytes: int = 4 * 1024
    line_bytes: int = 64
    open_row_policy: bool = True
    permutation_interleaving: bool = False
    request_buffer_size: int = 128
    # All-bank auto-refresh (disabled by default, as in the paper's model):
    # every refresh_interval cycles the banks refresh for refresh_cycles.
    refresh_enabled: bool = False
    refresh_interval: int = 31_200
    refresh_cycles: int = 640

    @property
    def lines_per_row(self) -> int:
        return self.row_buffer_bytes // self.line_bytes


@dataclass(frozen=True)
class CacheConfig:
    """Last-level (L2) cache configuration (paper Table 3)."""

    size_bytes: int = 512 * 1024
    associativity: int = 8
    line_bytes: int = 64
    hit_latency: int = 15
    mshr_entries: int = 32
    shared: bool = False

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class CoreConfig:
    """First-order out-of-order core model (paper Table 3)."""

    rob_size: int = 256
    retire_width: int = 4
    runahead: bool = False
    runahead_max_depth: int = 64


@dataclass(frozen=True)
class PrefetcherConfig:
    """Hardware prefetcher selection and aggressiveness.

    ``kind`` is one of ``"stream"``, ``"stride"``, ``"cdc"``, ``"markov"``
    or ``"none"``.  ``filter_kind`` optionally layers a prefetch filter:
    ``"ddpf"`` (dynamic data prefetch filtering) or ``"fdp"``
    (feedback-directed throttling).
    """

    kind: str = "stream"
    num_streams: int = 32
    degree: int = 4
    distance: int = 64
    filter_kind: Optional[str] = None
    # When True, stream prefetches rejected by a full MSHR/request buffer
    # are re-attempted on the next trigger (skip-less pointer).  The
    # paper's prefetcher drops them permanently (§6.1), which is what
    # makes rigid demand-first scheduling lose prefetch coverage.
    skipless: bool = False

    @property
    def enabled(self) -> bool:
        return self.kind != "none"


# drop_threshold table from paper Table 6: (accuracy upper bound, cycles).
DEFAULT_DROP_THRESHOLDS: Tuple[Tuple[float, int], ...] = (
    (0.10, 100),
    (0.30, 1_500),
    (0.70, 50_000),
    (1.01, 100_000),
)


@dataclass(frozen=True)
class PADCConfig:
    """Knobs of the Prefetch-Aware DRAM Controller (paper §4, Table 6)."""

    promotion_threshold: float = 0.85
    accuracy_interval: int = 100_000
    drop_thresholds: Tuple[Tuple[float, int], ...] = DEFAULT_DROP_THRESHOLDS
    use_urgency: bool = True
    use_ranking: bool = False
    age_granularity: int = 100


#: Simulation backends, fastest first.  All three are certified
#: byte-identical by the golden-equivalence matrix and the differential
#: fuzzer (DESIGN.md §11), which is what justifies excluding the backend
#: knob from result-cache keys: a cached result answers for any backend.
#:
#: * ``"event"`` — the skip-ahead loop: scheduling-relevant timestamps
#:   (bank free times, arrivals, interval/refresh boundaries) are tracked
#:   as scalar next-event times and the clock jumps straight to them;
#: * ``"optimized"`` — PR 5's cached-key scheduler under the generic
#:   event heap (every tick is a heap event);
#: * ``"reference"`` — the naive scheduler that re-derives every
#:   priority per round; the differential baseline.
BACKENDS: Tuple[str, ...] = ("event", "optimized", "reference")

DEFAULT_BACKEND = "event"


class BackendError(ValueError):
    """An unknown simulation-backend name; the message lists the choices."""


def resolve_backend(name: Optional[str]) -> str:
    """Validate a backend spelling; ``None`` means the default.

    Raises :class:`BackendError` (a ``ValueError``) for unknown names so
    every backend-accepting surface shares one error message.
    """
    if name is None:
        return DEFAULT_BACKEND
    if name not in BACKENDS:
        raise BackendError(
            f"unknown backend {name!r}; known backends: {', '.join(BACKENDS)}"
        )
    return name


def backend_from_env() -> Optional[str]:
    """The backend named by the environment, or ``None`` if unset.

    ``$REPRO_BACKEND`` is the supported knob.  ``$REPRO_SCHED`` is its
    pre-PR-6 spelling: still honored, but it emits a
    :class:`DeprecationWarning` naming the replacement.  When both are
    set they must agree — conflicting values raise :class:`BackendError`
    instead of one knob silently winning (an ignored override is the
    worst kind of configuration bug).  The returned name is *not*
    validated here; callers feed it through :func:`resolve_backend` like
    any other spelling.
    """
    import os
    import warnings

    current = os.environ.get("REPRO_BACKEND")
    legacy = os.environ.get("REPRO_SCHED")
    if legacy:
        warnings.warn(
            "$REPRO_SCHED is deprecated; set $REPRO_BACKEND instead",
            DeprecationWarning,
            stacklevel=2,
        )
    if current and legacy and current != legacy:
        raise BackendError(
            f"conflicting backend environment: $REPRO_BACKEND={current!r} "
            f"but legacy $REPRO_SCHED={legacy!r}; unset $REPRO_SCHED "
            "(deprecated) or make the two agree"
        )
    return current or legacy or None


class PolicyError(ValueError):
    """An unknown scheduling-policy name; the message suggests fixes."""


@dataclass(frozen=True)
class PolicyEntry:
    """One row of the policy table.

    ``policy`` is the canonical scheduler name handed to
    :func:`repro.controller.policies.make_policy`; ``padc`` holds the
    :class:`PADCConfig` knob settings the spelling implies (e.g. the
    paper's "padc-rank" is PADC with ``use_ranking=True``).
    """

    policy: str
    padc: Tuple[Tuple[str, object], ...] = ()


# The single policy-name registry.  Every surface that accepts a policy
# string — SystemConfig.with_policy, baseline_config, campaign
# PolicyVariant/alone_policy validation — resolves through this table,
# so an unknown spelling fails with the same did-you-mean error
# everywhere instead of diverging per entry point.
POLICY_TABLE: Dict[str, PolicyEntry] = {
    # The paper's headline policies (Figure 9's x-axis).
    "no-pref": PolicyEntry("no-pref"),
    "demand-first": PolicyEntry("demand-first"),
    "demand-prefetch-equal": PolicyEntry("demand-prefetch-equal"),
    "prefetch-first": PolicyEntry("prefetch-first"),
    "aps": PolicyEntry("aps"),
    "padc": PolicyEntry("padc"),
    # Comparison points (§6.12 APD-on-rigid, §6.6 PAR-BS interaction).
    "demand-first-apd": PolicyEntry("demand-first-apd"),
    "parbs": PolicyEntry("parbs"),
    # Scheduler-sweep baselines: plain FR-FCFS under its usual name, and
    # strict FCFS as the row-buffer-oblivious lower bound.
    "frfcfs": PolicyEntry("demand-prefetch-equal"),
    "fcfs": PolicyEntry("fcfs"),
    # Aliases bundling PADC knob settings (paper §6.6 and §6.8).
    "padc-rank": PolicyEntry("padc", (("use_ranking", True),)),
    "aps-rank": PolicyEntry("aps", (("use_ranking", True),)),
    "padc-no-urgency": PolicyEntry("padc", (("use_urgency", False),)),
}


def resolve_policy(name: str) -> PolicyEntry:
    """Look a policy spelling up in :data:`POLICY_TABLE`.

    Raises :class:`PolicyError` (a ``ValueError``) with a did-you-mean
    suggestion for unknown names; this is the one error message every
    policy-accepting surface shares.
    """
    try:
        return POLICY_TABLE[name]
    except (KeyError, TypeError):
        close = difflib.get_close_matches(str(name), list(POLICY_TABLE), n=3)
        hint = f" (did you mean {', '.join(close)}?)" if close else ""
        raise PolicyError(
            f"unknown scheduling policy {name!r}{hint}; "
            f"known policies: {', '.join(POLICY_TABLE)}"
        ) from None


@dataclass(frozen=True)
class SystemConfig:
    """Full system: cores, caches, prefetchers, DRAM, scheduling policy.

    ``policy`` is one of ``"demand-first"``, ``"demand-prefetch-equal"``,
    ``"prefetch-first"``, ``"aps"`` or ``"padc"`` (= APS + APD).
    """

    num_cores: int = 1
    core: CoreConfig = field(default_factory=CoreConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    prefetcher: PrefetcherConfig = field(default_factory=PrefetcherConfig)
    padc: PADCConfig = field(default_factory=PADCConfig)
    policy: str = "demand-first"
    # Simulation backend (:data:`BACKENDS`); ``None`` defers to the
    # $REPRO_BACKEND env knob and then :data:`DEFAULT_BACKEND`.  Excluded
    # from content hashing (``exclude_from_hash``): the backends are
    # certified byte-identical, so two configs differing only here MUST
    # share one cache entry — a result computed under any backend answers
    # for all of them.  This is the only field allowed to carry the
    # exclusion marker; tests/test_backend_cache.py pins that.
    backend: Optional[str] = field(
        default=None, metadata={"exclude_from_hash": True}
    )

    def with_policy(self, policy: str, **padc_overrides) -> "SystemConfig":
        """Return a copy of this config with a different scheduling policy.

        ``policy`` is resolved through :data:`POLICY_TABLE`, so table
        aliases work (``with_policy("padc-rank")`` is PADC with
        ``use_ranking=True``) and an unknown name raises the shared
        did-you-mean :class:`PolicyError`.  Explicit ``padc_overrides``
        win over the table's knob settings.
        """
        entry = resolve_policy(policy)
        merged = dict(entry.padc)
        merged.update(padc_overrides)
        padc = replace(self.padc, **merged) if merged else self.padc
        return replace(self, policy=entry.policy, padc=padc)

    def scaled_request_buffer(self) -> int:
        """Request-buffer entries scaled with core count (paper Table 4)."""
        per_core = {1: 64, 2: 32, 4: 32, 8: 32}.get(self.num_cores, 32)
        return max(64, per_core * self.num_cores)


def baseline_config(
    num_cores: int = 1,
    policy: str = "demand-first",
    prefetcher_kind: str = "stream",
    *,
    shared_cache: bool = False,
    num_channels: int = 1,
    cache_kb_per_core: Optional[int] = None,
    row_buffer_kb: int = 4,
    open_row: bool = True,
    permutation: bool = False,
    runahead: bool = False,
    filter_kind: Optional[str] = None,
    use_ranking: Optional[bool] = None,
    use_urgency: Optional[bool] = None,
) -> SystemConfig:
    """Build the paper's baseline configuration for an N-core CMP.

    Mirrors Tables 3 and 4: 512KB private L2 per core (1MB for single
    core), 64/64/128/256-entry request buffers for 1/2/4/8 cores, one
    memory controller with 8 banks and 4KB row buffers.

    ``policy`` resolves through :data:`POLICY_TABLE` (unknown names get
    the shared did-you-mean error); table aliases such as ``padc-rank``
    pre-set the PADC knobs, and explicit ``use_ranking``/``use_urgency``
    arguments override them.
    """
    entry = resolve_policy(policy)
    padc_knobs = {"use_ranking": False, "use_urgency": True}
    padc_knobs.update(dict(entry.padc))
    if use_ranking is not None:
        padc_knobs["use_ranking"] = use_ranking
    if use_urgency is not None:
        padc_knobs["use_urgency"] = use_urgency
    if cache_kb_per_core is None:
        cache_kb_per_core = 1024 if num_cores == 1 else 512
    # 48 in-flight line fills per core: enough that the *shared* DRAM
    # request buffer (not the private MSHR file) is the binding resource
    # in multi-core runs, which is where the paper's §6.1 buffer-pressure
    # effects (useless prefetches denying service to demands) play out.
    mshr_per_core = 48
    if shared_cache:
        cache = CacheConfig(
            size_bytes=cache_kb_per_core * 1024 * num_cores,
            associativity=4 * num_cores,
            shared=True,
            mshr_entries=mshr_per_core * num_cores,
        )
    else:
        cache = CacheConfig(
            size_bytes=cache_kb_per_core * 1024, mshr_entries=mshr_per_core
        )
    request_buffer = {1: 64, 2: 64, 4: 128, 8: 256}.get(num_cores, 32 * num_cores)
    dram = DRAMConfig(
        num_channels=num_channels,
        request_buffer_size=request_buffer,
        row_buffer_bytes=row_buffer_kb * 1024,
        open_row_policy=open_row,
        permutation_interleaving=permutation,
    )
    return SystemConfig(
        num_cores=num_cores,
        core=CoreConfig(runahead=runahead),
        cache=cache,
        dram=dram,
        prefetcher=PrefetcherConfig(kind=prefetcher_kind, filter_kind=filter_kind),
        padc=PADCConfig(**padc_knobs),
        policy=entry.policy,
    )


ALL_POLICIES: Sequence[str] = (
    "no-pref",
    "demand-first",
    "demand-prefetch-equal",
    "prefetch-first",
    "aps",
    "padc",
)
