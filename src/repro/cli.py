"""Command-line interface.

Subcommands::

    python -m repro simulate --cores 4 --policy padc --benchmarks swim,art,libquantum,milc
    python -m repro benchmarks                 # list the 55 workload profiles
    python -m repro cost --cores 4             # Tables 1-2 storage cost
    python -m repro experiment fig16 fig01     # regenerate paper artifacts
    python -m repro campaign run --name paper  # ledgered sweep (run/status/resume/export)
    python -m repro telemetry report result.json  # interval telemetry reports
    python -m repro trace swim out.trace.gz --accesses 10000
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import api
from repro.controller.cost import cost_as_fraction_of_l2, padc_storage_cost
from repro.core.tracefile import save_trace
from repro.metrics import harmonic_speedup, unfairness, weighted_speedup
from repro.params import ALL_POLICIES, baseline_config
from repro.runtime import SimJob
from repro.workloads import ALL_BENCHMARKS, make_trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prefetch-Aware DRAM Controllers (MICRO 2008) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one simulation")
    sim.add_argument("--cores", type=int, default=1)
    sim.add_argument("--policy", default="padc", help=f"one of {ALL_POLICIES}")
    sim.add_argument(
        "--benchmarks",
        required=True,
        help="comma-separated benchmark names (one per core)",
    )
    sim.add_argument("--accesses", type=int, default=8_000)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--prefetcher", default="stream")
    sim.add_argument("--channels", type=int, default=1)
    sim.add_argument("--shared-cache", action="store_true")
    sim.add_argument("--runahead", action="store_true")
    sim.add_argument(
        "--alone",
        action="store_true",
        help="also run each benchmark alone and report WS/HS/UF",
    )
    sim.add_argument(
        "--telemetry",
        action="store_true",
        help="trace interval telemetry and print the phase summary "
        "(full reports: python -m repro.telemetry)",
    )
    _add_runtime_flags(sim)

    sub.add_parser("benchmarks", help="list the workload profiles")

    cost = sub.add_parser("cost", help="PADC storage cost (Tables 1-2)")
    cost.add_argument("--cores", type=int, default=4)
    cost.add_argument("--cache-lines", type=int, default=8192)
    cost.add_argument("--buffer-entries", type=int, default=128)
    cost.add_argument("--ranking", action="store_true")

    experiment = sub.add_parser("experiment", help="run paper experiments")
    experiment.add_argument("names", nargs="+", help="experiment ids, or 'all'")
    _add_runtime_flags(experiment)

    trace = sub.add_parser(
        "trace",
        help="dump a synthetic trace (.rtr binary if the output ends in "
        ".rtr, else legacy gzip text; see python -m repro.trace)",
    )
    trace.add_argument("benchmark")
    trace.add_argument("output")
    trace.add_argument("--accesses", type=int, default=10_000)
    trace.add_argument("--seed", type=int, default=0)

    campaign = sub.add_parser(
        "campaign",
        help="sweep campaigns: run/status/resume/export (see python -m repro.campaign)",
        add_help=False,
    )
    campaign.add_argument("rest", nargs=argparse.REMAINDER)

    telemetry = sub.add_parser(
        "telemetry",
        help="interval telemetry: report/run/campaign (see python -m repro.telemetry)",
        add_help=False,
    )
    telemetry.add_argument("rest", nargs=argparse.REMAINDER)
    return parser


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    """Parallelism/caching knobs shared by simulation-running subcommands."""
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for independent simulations "
        "(0 = one per CPU core; default $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk result cache (default $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk result cache",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="checked mode: audit simulator invariants at every interval "
        "boundary and end-of-sim (also $REPRO_CHECK=1)",
    )


def _configure_runtime(args):
    """Install the runtime the CLI flags ask for; returns it."""
    from repro import runtime

    if args.jobs is not None or args.cache_dir is not None or args.no_cache:
        return runtime.configure(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            cache_enabled=False if args.no_cache else None,
        )
    return runtime.get_runtime()


def _cmd_simulate(args) -> int:
    benchmarks = [name.strip() for name in args.benchmarks.split(",") if name.strip()]
    if len(benchmarks) != args.cores:
        print(
            f"error: {args.cores} cores but {len(benchmarks)} benchmarks",
            file=sys.stderr,
        )
        return 2
    config = baseline_config(
        args.cores,
        policy=args.policy,
        prefetcher_kind=args.prefetcher,
        num_channels=args.channels,
        shared_cache=args.shared_cache,
        runahead=args.runahead,
    )
    runtime = _configure_runtime(args)
    sim_kwargs = {"check": True} if args.check else {}
    result = api.submit(
        config,
        benchmarks,
        args.accesses,
        seed=args.seed,
        runtime=runtime,
        telemetry=args.telemetry,
        **sim_kwargs,
    )
    print(f"policy={args.policy} cycles={result.total_cycles}")
    print(
        f"{'core':<6}{'benchmark':<16}{'IPC':>7}{'MPKI':>7}{'ACC':>7}"
        f"{'COV':>7}{'SPL':>8}{'dropped':>9}"
    )
    for core in result.cores:
        print(
            f"{core.core_id:<6}{core.benchmark:<16}{core.ipc:>7.3f}"
            f"{core.mpki:>7.1f}{core.accuracy:>7.2f}{core.coverage:>7.2f}"
            f"{core.spl:>8.1f}{core.pf_dropped:>9}"
        )
    breakdown = result.traffic_breakdown()
    print(
        f"traffic: {result.total_traffic} lines "
        f"(demand {breakdown['demand']}, useful-pref {breakdown['pref-useful']}, "
        f"useless-pref {breakdown['pref-useless']}); "
        f"row-buffer hit rate {result.row_buffer_hit_rate:.2f}"
    )
    if args.telemetry and result.trace is not None:
        from repro.telemetry import phase_summary

        print("phase summary:")
        for line in phase_summary(result.trace):
            print(f"  * {line}")
    if args.alone and args.cores > 1:
        alone_config = baseline_config(1, policy="demand-first")
        alone_jobs = [
            SimJob.make(
                alone_config,
                [benchmark],
                args.accesses,
                seed=args.seed + index,
                **sim_kwargs,
            )
            for index, benchmark in enumerate(benchmarks)
        ]
        alone = [
            run.cores[0].ipc
            for run in api.submit_many(alone_jobs, runtime=runtime)
        ]
        together = result.ipcs()
        print(
            f"WS={weighted_speedup(together, alone):.3f} "
            f"HS={harmonic_speedup(together, alone):.3f} "
            f"UF={unfairness(together, alone):.2f}"
        )
    return 0


def _cmd_benchmarks(_args) -> int:
    print(f"{'name':<16}{'class':>6}{'apki':>7}{'run':>8}{'streams':>8}")
    for profile in ALL_BENCHMARKS:
        print(
            f"{profile.name:<16}{profile.pf_class:>6}{profile.apki:>7.1f}"
            f"{profile.run_length:>8}{profile.num_streams:>8}"
        )
    print(f"\n{len(ALL_BENCHMARKS)} profiles (class 0=insensitive, 1=friendly, 2=unfriendly)")
    return 0


def _cmd_cost(args) -> int:
    cost = padc_storage_cost(
        num_cores=args.cores,
        cache_lines_per_core=args.cache_lines,
        request_buffer_entries=args.buffer_entries,
        with_ranking=args.ranking,
    )
    for field, bits in cost.as_dict().items():
        print(f"{field:<10}{bits:>10} bits")
    l2_bytes = args.cache_lines * 64 * args.cores
    print(f"{'':<10}{cost.total_bits / 8192:>10.2f} KB")
    print(f"fraction of L2 capacity: {cost_as_fraction_of_l2(cost, l2_bytes):.4f}")
    print(f"without P bits: {cost.total_bits_without_p_bits} bits")
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments.__main__ import main as experiments_main

    argv = list(args.names)
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    if args.cache_dir is not None:
        argv += ["--cache-dir", args.cache_dir]
    if args.no_cache:
        argv.append("--no-cache")
    if args.check:
        argv.append("--check")
    return experiments_main(argv)


def _cmd_campaign(args) -> int:
    from repro.campaign.__main__ import main as campaign_main

    return campaign_main(args.rest)


def _cmd_telemetry(args) -> int:
    from repro.telemetry.__main__ import main as telemetry_main

    return telemetry_main(args.rest)


def _cmd_trace(args) -> int:
    entries = make_trace(args.benchmark, seed=args.seed)
    if args.output.endswith(".rtr"):
        from repro.trace import write_trace

        header = write_trace(args.output, entries, limit=args.accesses)
        print(
            f"wrote {header.entries} accesses to {args.output} "
            f"(digest {header.digest[:16]}...)"
        )
        return 0
    count = save_trace(entries, args.output, limit=args.accesses)
    print(f"wrote {count} accesses to {args.output}")
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "benchmarks": _cmd_benchmarks,
    "cost": _cmd_cost,
    "experiment": _cmd_experiment,
    "campaign": _cmd_campaign,
    "telemetry": _cmd_telemetry,
    "trace": _cmd_trace,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
