"""Performance benchmark harness for the scheduling hot path (DESIGN.md §10-11).

Two benchmark tiers, both deterministic and cache-free (results come from
freshly built :class:`~repro.sim.system.System` instances — the disk-backed
experiment cache is never consulted, so numbers always reflect the code as
it is now):

* **tick-loop microbench** — drives the scheduling round directly
  (``DRAMControllerEngine.tick``, or the event backend's fused per-channel
  ticker) on a pre-filled request buffer, with no core/cache/event-loop
  machinery around it.  Isolates the scheduler itself.
* **campaign-preset macrobench** — the ``padc`` 4-core multiprogrammed mix
  used by the campaign presets, run end-to-end through ``System.run`` with
  the scheduling entry point wrapped in a timing accumulator.  Reports
  both end-to-end throughput (simulated DRAM cycles per wall-clock second)
  and *tick-loop throughput* (simulated cycles per second spent inside the
  scheduling round).

Every run can execute against all three backends (the skip-ahead ``event``
backend, the ``optimized`` incremental heap backend, and the naive
``reference`` path); their ``SimResult.to_dict()`` outputs are asserted
identical by :func:`verify_equivalence` before any numbers are reported,
so a bench report is also an equivalence certificate.

:func:`certify_event_speedup` measures the event backend against the
optimized heap backend with paired in-process alternation (median of
per-pair CPU-time ratios — the pairing cancels slow machine drift that
makes two independent best-of-N aggregates incomparable).  The resulting
certificate is embedded in the report under ``"certificate"``.

The report is a schema-versioned JSON document (``BENCH_10.json``).  The
regression check compares the optimized/reference *speedup ratios* — a
machine-independent quantity — against the committed baseline, flagging
any policy whose tick-loop speedup fell by more than the threshold
(default 25%).

Schema 3 (this generation) adds the **phase-attribution section**
(``--phases``; see :mod:`repro.bench.phases`): a cProfile pass over the
macrobench whose self-time is bucketed into workload / core_cache /
prefetcher / controller / telemetry / other, plus a scale-matched
end-to-end ``wall_s`` comparison against the previous-generation
``BENCH_6.json`` report (which stays schema 2 and is read with the
version check deliberately relaxed — absolute walls, not ratios, are
what the front-end optimization is accountable for).
"""

from __future__ import annotations

import json
import random
import statistics
from dataclasses import dataclass
from time import perf_counter, process_time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.params import BACKENDS, SystemConfig, baseline_config
from repro.sim.system import System

SCHEMA_VERSION = 3
BENCH_NAME = "BENCH_10"
DEFAULT_REPORT = "BENCH_10.json"
# Previous-generation report: the wall_s comparison baseline (schema 2).
PREVIOUS_REPORT = "BENCH_6.json"

# The campaign-preset macrobench: the padc 4-core multiprogrammed mix.
MACRO_MIX: Tuple[str, ...] = ("mcf_06", "libquantum_06", "lucas_00", "hmmer_06")
MACRO_SEED = 7

# The certificate's default cell: the paper's own prefetch-dropping
# policy, which measured as the most run-to-run-stable cell on the dev
# container (fcfs is marginally cheaper per round but noisier).
CERTIFY_POLICY = "demand-first-apd"
CERTIFY_PAIRS = 5

# Policies benchmarked (and verified) by default — the golden-equivalence
# matrix of DESIGN.md §10.
DEFAULT_POLICIES: Tuple[str, ...] = (
    "fcfs",
    "frfcfs",
    "demand-first",
    "demand-first-apd",
    "padc",
    "padc-rank",
)

# Workload mixes for the equivalence sweep (the macrobench mix plus a
# second mix with different stream/locality character).
VERIFY_MIXES: Tuple[Tuple[str, ...], ...] = (
    MACRO_MIX,
    ("swim_00", "galgel_00", "art_00", "ammp_00"),
)
VERIFY_SEEDS: Tuple[int, ...] = (7, 11)


@dataclass(frozen=True)
class Scale:
    """Benchmark sizing: accesses per core (macro) and requests (micro)."""

    name: str
    macro_accesses: int
    micro_requests: int
    verify_accesses: int


SCALES: Dict[str, Scale] = {
    scale.name: scale
    for scale in (
        Scale("tiny", macro_accesses=1_500, micro_requests=2_000, verify_accesses=800),
        Scale("quick", macro_accesses=5_000, micro_requests=8_000, verify_accesses=1_500),
        Scale("medium", macro_accesses=20_000, micro_requests=30_000, verify_accesses=3_000),
        Scale("paper", macro_accesses=50_000, micro_requests=100_000, verify_accesses=5_000),
    )
}


def _macro_config(policy: str) -> SystemConfig:
    return baseline_config(num_cores=len(MACRO_MIX), policy=policy)


class _TickTimer:
    """Accumulates wall time spent inside the scheduling round.

    For the heap backends it is installed as an instance attribute on the
    engine (shadowing the bound ``tick`` method), so every call site —
    including the run loop's hoisted local — goes through it.  For the
    event backend (which never calls ``engine.tick``) the per-channel
    ticker closures are wrapped instead; see :func:`_install_tick_timer`.
    The overhead (two ``perf_counter`` calls per round) is identical for
    every backend, so speedup ratios are unaffected.
    """

    __slots__ = ("_inner", "elapsed", "calls")

    def __init__(self, inner=None):
        self._inner = inner
        self.elapsed = 0.0
        self.calls = 0

    def __call__(self, *args):
        start = perf_counter()
        result = self._inner(*args)
        self.elapsed += perf_counter() - start
        self.calls += 1
        return result


def _install_tick_timer(system: System, backend: str) -> _TickTimer:
    """Install round timing on ``system`` for the given backend.

    Heap backends route every scheduling round through ``engine.tick``;
    the event backend builds one fused ticker closure per channel via
    ``engine.make_event_ticker`` and calls those directly, so there the
    factory is shadowed and each closure it returns is wrapped.  All
    wrapped closures share one accumulator, so ``elapsed``/``calls``
    aggregate across channels exactly like the shared-``tick`` path.
    """
    engine = system.engine
    if backend == "event":
        timer = _TickTimer()
        inner_factory = engine.make_event_ticker

        def timed_factory(channel_id: int):
            inner = inner_factory(channel_id)

            def timed(now: int):
                start = perf_counter()
                result = inner(now)
                timer.elapsed += perf_counter() - start
                timer.calls += 1
                return result

            return timed

        engine.make_event_ticker = timed_factory  # instance attr shadow
        return timer
    timer = _TickTimer(engine.tick)
    engine.tick = timer  # instance attr shadows the bound method
    return timer


# -- macrobench ------------------------------------------------------------


def run_macro(
    policy: str,
    scale: str,
    backend: str = "event",
    *,
    seed: int = MACRO_SEED,
) -> Dict[str, object]:
    """Run the campaign-preset macrobench once; return its measurements.

    ``tick_loop_s`` is the wall time spent inside the scheduling round
    (the hot path); ``cycles_per_sec`` and ``tick_cycles_per_sec`` divide
    the simulated cycle count by end-to-end and tick-loop wall time
    respectively.
    """
    sizing = SCALES[scale]
    system = System(
        _macro_config(policy), list(MACRO_MIX), seed=seed, backend=backend
    )
    timer = _install_tick_timer(system, backend)
    start = perf_counter()
    result = system.run(sizing.macro_accesses)
    wall = perf_counter() - start
    cycles = result.total_cycles
    return {
        "backend": backend,
        "accesses_per_core": sizing.macro_accesses,
        "cycles": cycles,
        "wall_s": round(wall, 6),
        "cycles_per_sec": round(cycles / wall, 1) if wall else None,
        "tick_loop_s": round(timer.elapsed, 6),
        "tick_calls": timer.calls,
        "tick_cycles_per_sec": (
            round(cycles / timer.elapsed, 1) if timer.elapsed else None
        ),
    }


def bench_macro_policy(policy: str, scale: str, repeats: int = 1) -> Dict[str, object]:
    """Macrobench one policy on every backend; best-of-``repeats``.

    All backends are interleaved within each repeat round so transient
    machine load hits them symmetrically.  ``speedup_end_to_end`` and
    ``speedup_tick_loop`` keep their PR-5 meaning (optimized heap vs
    naive reference — the regression-check quantity); the event backend's
    gain over the optimized heap is reported separately as
    ``speedup_event_end_to_end`` / ``speedup_event_tick_loop``.
    """
    best: Dict[str, Dict[str, object]] = {}
    for _ in range(max(1, repeats)):
        for backend in BACKENDS:
            sample = run_macro(policy, scale, backend)
            incumbent = best.get(backend)
            if incumbent is None or sample["wall_s"] < incumbent["wall_s"]:
                best[backend] = sample
    event, opt, ref = best["event"], best["optimized"], best["reference"]
    return {
        "event": event,
        "optimized": opt,
        "reference": ref,
        "speedup_end_to_end": round(
            opt["cycles_per_sec"] / ref["cycles_per_sec"], 3
        ),
        "speedup_tick_loop": round(
            opt["tick_cycles_per_sec"] / ref["tick_cycles_per_sec"], 3
        ),
        "speedup_event_end_to_end": round(
            event["cycles_per_sec"] / opt["cycles_per_sec"], 3
        ),
        "speedup_event_tick_loop": round(
            event["tick_cycles_per_sec"] / opt["tick_cycles_per_sec"], 3
        ),
    }


# -- event-speedup certificate ---------------------------------------------


def certify_event_speedup(
    policy: str = CERTIFY_POLICY,
    scale: str = "medium",
    *,
    pairs: int = CERTIFY_PAIRS,
    seed: int = MACRO_SEED,
) -> Dict[str, object]:
    """Measure event vs optimized with paired in-process alternation.

    Best-of-N aggregates taken minutes apart drift with machine load; a
    paired design runs the two backends back-to-back and takes the median
    of the per-pair CPU-time ratios, which cancels slow drift and is
    robust to individual outlier pairs.  CPU time (``process_time``) is
    used rather than wall time so a preempted run does not register as a
    slow backend.  The first (warmup) pair pays allocator/import warmup
    and is discarded.
    """
    sizing = SCALES[scale]
    accesses = sizing.macro_accesses

    def one(backend: str, n: int) -> float:
        system = System(
            _macro_config(policy), list(MACRO_MIX), seed=seed, backend=backend
        )
        start = process_time()
        system.run(n)
        return process_time() - start

    one("optimized", max(1, accesses // 10))
    one("event", max(1, accesses // 10))
    ratios: List[float] = []
    for _ in range(max(1, pairs)):
        opt = one("optimized", accesses)
        event = one("event", accesses)
        ratios.append(opt / event if event else 1.0)
    return {
        "policy": policy,
        "scale": scale,
        "accesses_per_core": accesses,
        "seed": seed,
        "pairs": len(ratios),
        "method": (
            "paired in-process alternation (optimized then event per pair, "
            "one discarded warmup pair); median of per-pair CPU-time ratios"
        ),
        "ratios": [round(ratio, 4) for ratio in ratios],
        "speedup_event_vs_optimized": round(statistics.median(ratios), 3),
    }


# -- tick-loop microbench --------------------------------------------------


def run_micro(
    policy: str,
    scale: str,
    backend: str = "event",
    *,
    seed: int = 3,
) -> Dict[str, object]:
    """Drive the scheduling round directly on a synthetic request population.

    A fresh engine (built with the macrobench's config so the policy,
    tracker and dropper wiring match production) is loaded with
    ``micro_requests`` pseudo-random requests — mixed demand/prefetch,
    spread across cores, banks and rows — and then ticked to exhaustion.
    Only the tick loop is timed; request construction and admission are
    excluded (overflow draining, which happens inside the round, is part
    of the measured path by design — it is part of every real round).
    The heap backends go through ``engine.tick``; the event backend
    through its fused per-channel ticker closures.
    """
    sizing = SCALES[scale]
    system = System(
        _macro_config(policy), list(MACRO_MIX), seed=seed, backend=backend
    )
    engine = system.engine
    rng = random.Random(seed)
    num_cores = len(MACRO_MIX)
    for arrival in range(sizing.micro_requests):
        request = engine.build_request(
            line_addr=rng.randrange(1 << 26),
            core_id=rng.randrange(num_cores),
            is_prefetch=rng.random() < 0.5,
            now=arrival,
        )
        engine.enqueue_demand(request)  # overflow FIFO absorbs the excess
    admitted = engine.stats.enqueued_total
    num_channels = engine.config.num_channels
    stats = engine.stats
    now = 0
    ticks = 0
    if backend == "event":
        tickers = [engine.make_event_ticker(ch) for ch in range(num_channels)]
        start = perf_counter()
        while stats.serviced_total + stats.dropped_prefetches < admitted:
            next_now = None
            for channel_id in range(num_channels):
                _, wake = tickers[channel_id](now)
                ticks += 1
                if wake is not None and (next_now is None or wake < next_now):
                    next_now = wake
            now = next_now if next_now is not None and next_now > now else now + 1
        elapsed = perf_counter() - start
    else:
        tick = engine.tick
        start = perf_counter()
        while stats.serviced_total + stats.dropped_prefetches < admitted:
            next_now = None
            for channel_id in range(num_channels):
                _, wake = tick(channel_id, now)
                ticks += 1
                if wake is not None and (next_now is None or wake < next_now):
                    next_now = wake
            now = next_now if next_now is not None and next_now > now else now + 1
        elapsed = perf_counter() - start
    return {
        "backend": backend,
        "requests": admitted,
        "cycles": now,
        "ticks": ticks,
        "wall_s": round(elapsed, 6),
        "cycles_per_sec": round(now / elapsed, 1) if elapsed else None,
        "requests_per_sec": round(admitted / elapsed, 1) if elapsed else None,
    }


def bench_micro_policy(policy: str, scale: str, repeats: int = 1) -> Dict[str, object]:
    """Microbench one policy on every backend; best-of-``repeats``."""
    best: Dict[str, Dict[str, object]] = {}
    for _ in range(max(1, repeats)):
        for backend in BACKENDS:
            sample = run_micro(policy, scale, backend)
            incumbent = best.get(backend)
            if incumbent is None or sample["wall_s"] < incumbent["wall_s"]:
                best[backend] = sample
    event, opt, ref = best["event"], best["optimized"], best["reference"]
    return {
        "event": event,
        "optimized": opt,
        "reference": ref,
        "speedup": round(opt["requests_per_sec"] / ref["requests_per_sec"], 3),
        "speedup_event": round(
            event["requests_per_sec"] / opt["requests_per_sec"], 3
        ),
    }


# -- trace encode/decode throughput ----------------------------------------

# Entries per trace-bench run = micro_requests x this multiplier (decode
# is far cheaper per entry than a scheduling round, so it needs a larger
# population for stable numbers).
TRACE_BENCH_MULTIPLIER = 25
TRACE_BENCH_BENCHMARK = "swim_00"


def bench_trace(scale: str, *, seed: int = MACRO_SEED) -> Dict[str, object]:
    """Measure ``.rtr`` encode and streaming-decode throughput.

    Renders a synthetic trace to a temporary ``.rtr`` file (timing the
    encoder), then iterates the whole file back (timing the mmap-backed
    decoder).  Reported entries/sec are machine-dependent; bytes/entry is
    not, so it doubles as a compactness snapshot of the format.
    """
    import os
    import tempfile

    from repro.trace.format import TraceReader, write_trace
    from repro.workloads import make_trace

    entries = SCALES[scale].micro_requests * TRACE_BENCH_MULTIPLIER
    descriptor, path = tempfile.mkstemp(suffix=".rtr")
    os.close(descriptor)
    try:
        start = perf_counter()
        header = write_trace(
            path, make_trace(TRACE_BENCH_BENCHMARK, seed=seed), limit=entries
        )
        encode_s = perf_counter() - start
        size = os.path.getsize(path)
        reader = TraceReader(path)
        decoded = 0
        start = perf_counter()
        for _ in reader.entries():
            decoded += 1
        decode_s = perf_counter() - start
    finally:
        os.unlink(path)
    if decoded != entries:
        raise RuntimeError(
            f"trace bench decoded {decoded} of {entries} entries"
        )
    return {
        "benchmark": TRACE_BENCH_BENCHMARK,
        "entries": entries,
        "blocks": header.blocks,
        "file_bytes": size,
        "bytes_per_entry": round(size / entries, 3),
        "encode_s": round(encode_s, 6),
        "encode_entries_per_sec": round(entries / encode_s, 1) if encode_s else None,
        "decode_s": round(decode_s, 6),
        "decode_entries_per_sec": round(entries / decode_s, 1) if decode_s else None,
    }


# -- equivalence -----------------------------------------------------------


def verify_equivalence(
    policies: Sequence[str],
    scale: str,
    *,
    mixes: Sequence[Sequence[str]] = VERIFY_MIXES,
    seeds: Sequence[int] = VERIFY_SEEDS,
    backends: Sequence[str] = BACKENDS,
) -> Dict[str, object]:
    """All-backend differential over policies × mixes × seeds.

    Every backend's ``SimResult.to_dict()`` is compared against the first
    backend's output for the same case.  Returns ``{"cases": N,
    "backends": [...], "mismatches": [case descriptions]}``; an empty
    mismatch list certifies byte-identical results for every case.
    """
    accesses = SCALES[scale].verify_accesses
    mismatches: List[str] = []
    cases = 0
    for policy in policies:
        for mix in mixes:
            for seed in seeds:
                cases += 1
                config = baseline_config(num_cores=len(mix), policy=policy)
                golden = None
                for backend in backends:
                    system = System(config, list(mix), seed=seed, backend=backend)
                    output = system.run(accesses).to_dict()
                    if golden is None:
                        golden = (backend, output)
                    elif output != golden[1]:
                        mismatches.append(
                            f"policy={policy} mix={','.join(mix)} seed={seed}: "
                            f"{backend} != {golden[0]}"
                        )
    return {"cases": cases, "backends": list(backends), "mismatches": mismatches}


# -- report + regression ---------------------------------------------------


def build_report(
    scale: str,
    policies: Sequence[str],
    *,
    repeats: int = 1,
    verify: bool = True,
    run_micro_bench: bool = True,
    run_trace_bench: bool = True,
    certify: bool = True,
    certify_policy: str = CERTIFY_POLICY,
    certify_pairs: int = CERTIFY_PAIRS,
    phases: bool = False,
    phase_backend: str = "event",
    progress=None,
) -> Dict[str, object]:
    """Run the full bench matrix and assemble the report document.

    With ``phases`` the report gains a ``"phases"`` section: one
    phase-attributed cProfile breakdown per policy on ``phase_backend``
    (see :mod:`repro.bench.phases`).  The profiled runs are separate
    from the timed macrobench runs, so the attribution never perturbs
    the reported walls.
    """

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    report: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "bench": BENCH_NAME,
        "scale": scale,
        "macro": {
            "mix": list(MACRO_MIX),
            "seed": MACRO_SEED,
            "accesses_per_core": SCALES[scale].macro_accesses,
            "policies": {},
        },
        "micro": {"requests": SCALES[scale].micro_requests, "policies": {}},
    }
    if verify:
        note("verifying event == optimized == reference over the policy matrix ...")
        report["equivalence"] = verify_equivalence(policies, scale)
    for policy in policies:
        note(f"macrobench {policy} ...")
        report["macro"]["policies"][policy] = bench_macro_policy(
            policy, scale, repeats
        )
        if run_micro_bench:
            note(f"microbench {policy} ...")
            report["micro"]["policies"][policy] = bench_micro_policy(
                policy, scale, repeats
            )
    if phases:
        from repro.bench.phases import run_phases

        phase_entries = {}
        for policy in policies:
            note(f"phase attribution {policy} ({phase_backend}) ...")
            phase_entries[policy] = run_phases(policy, scale, phase_backend)
        report["phases"] = {"backend": phase_backend, "policies": phase_entries}
    if run_trace_bench:
        note("trace encode/decode throughput ...")
        report["trace"] = bench_trace(scale)
    if certify:
        note(
            f"certifying event speedup ({certify_policy}, "
            f"{certify_pairs} pairs) ..."
        )
        report["certificate"] = certify_event_speedup(
            certify_policy, scale, pairs=certify_pairs
        )
    return report


def baseline_speedups(
    baseline: Dict[str, object], scale: str
) -> Optional[Dict[str, float]]:
    """Extract the baseline's tick-loop speedups comparable at ``scale``.

    Speedup ratios vary systematically with benchmark sizing (short runs
    amortize fewer rebuilds), so only same-scale numbers are comparable:
    the baseline's own macro section when its scale matches, else its
    ``speedups_by_scale`` side-table (recorded via ``--also-scales`` when
    the baseline was generated).  ``None`` when no comparable data exists.
    """
    if baseline.get("scale") == scale:
        policies = baseline.get("macro", {}).get("policies", {})
        return {
            policy: entry["speedup_tick_loop"]
            for policy, entry in policies.items()
            if entry.get("speedup_tick_loop")
        }
    per_scale = baseline.get("speedups_by_scale", {}).get(scale)
    if per_scale:
        return dict(per_scale)
    return None


def check_regression(
    current: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = 0.25,
) -> List[str]:
    """Compare speedup ratios against a baseline report.

    The optimized/reference speedup is measured within one process on one
    machine, so it transfers across machines (unlike absolute cycles/sec).
    A policy regresses when its tick-loop speedup drops more than
    ``threshold`` (fractional) below the baseline's recorded value at the
    same scale.  Returns a list of human-readable failures (empty = pass).
    """
    failures: List[str] = []
    if baseline.get("schema_version") != current.get("schema_version"):
        return [
            "baseline schema_version "
            f"{baseline.get('schema_version')!r} != current "
            f"{current.get('schema_version')!r}: regenerate the baseline"
        ]
    base_speedups = baseline_speedups(baseline, current.get("scale", ""))
    if base_speedups is None:
        return []  # no comparable baseline data at this scale
    cur_policies = current.get("macro", {}).get("policies", {})
    for policy, base_speedup in base_speedups.items():
        cur_entry = cur_policies.get(policy)
        if cur_entry is None:
            continue  # not benchmarked this run
        cur_speedup = cur_entry.get("speedup_tick_loop")
        if not cur_speedup:
            continue
        floor = base_speedup * (1.0 - threshold)
        if cur_speedup < floor:
            failures.append(
                f"{policy}: tick-loop speedup {cur_speedup:.2f}x fell below "
                f"{floor:.2f}x (baseline {base_speedup:.2f}x - {threshold:.0%})"
            )
    return failures


def load_report(path: str) -> Optional[Dict[str, object]]:
    """Read a bench report; None if the file is absent or unparseable."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def write_report(path: str, report: Dict[str, object]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
