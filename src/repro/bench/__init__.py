"""Performance benchmark harness for the scheduling hot path (DESIGN.md §10).

Two benchmark tiers, both deterministic and cache-free (results come from
freshly built :class:`~repro.sim.system.System` instances — the disk-backed
experiment cache is never consulted, so numbers always reflect the code as
it is now):

* **tick-loop microbench** — drives ``DRAMControllerEngine.tick`` directly
  on a pre-filled request buffer, with no core/cache/event-loop machinery
  around it.  Isolates the scheduler itself.
* **campaign-preset macrobench** — the ``padc`` 4-core multiprogrammed mix
  used by the campaign presets, run end-to-end through ``System.run`` with
  the engine's tick entry point wrapped in a timing accumulator.  Reports
  both end-to-end throughput (simulated DRAM cycles per wall-clock second)
  and *tick-loop throughput* (simulated cycles per second spent inside
  ``engine.tick`` — the acceptance metric for the hot-path optimization).

Every run can execute against both scheduler implementations (the
optimized incremental path and the naive reference path); their
``SimResult.to_dict()`` outputs are asserted identical by
:func:`verify_equivalence` before any numbers are reported, so a bench
report is also an equivalence certificate.

The report is a schema-versioned JSON document (``BENCH_5.json``).  The
regression check compares the optimized/reference *speedup ratios* — a
machine-independent quantity — against the committed baseline, flagging
any policy whose tick-loop speedup fell by more than the threshold
(default 25%).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.params import SystemConfig, baseline_config
from repro.sim.system import System

SCHEMA_VERSION = 1
BENCH_NAME = "BENCH_5"
DEFAULT_REPORT = "BENCH_5.json"

# The campaign-preset macrobench: the padc 4-core multiprogrammed mix.
MACRO_MIX: Tuple[str, ...] = ("mcf_06", "libquantum_06", "lucas_00", "hmmer_06")
MACRO_SEED = 7

# Policies benchmarked (and verified) by default — the golden-equivalence
# matrix of DESIGN.md §10.
DEFAULT_POLICIES: Tuple[str, ...] = (
    "fcfs",
    "frfcfs",
    "demand-first",
    "demand-first-apd",
    "padc",
    "padc-rank",
)

# Workload mixes for the equivalence sweep (the macrobench mix plus a
# second mix with different stream/locality character).
VERIFY_MIXES: Tuple[Tuple[str, ...], ...] = (
    MACRO_MIX,
    ("swim_00", "galgel_00", "art_00", "ammp_00"),
)
VERIFY_SEEDS: Tuple[int, ...] = (7, 11)


@dataclass(frozen=True)
class Scale:
    """Benchmark sizing: accesses per core (macro) and requests (micro)."""

    name: str
    macro_accesses: int
    micro_requests: int
    verify_accesses: int


SCALES: Dict[str, Scale] = {
    scale.name: scale
    for scale in (
        Scale("tiny", macro_accesses=1_500, micro_requests=2_000, verify_accesses=800),
        Scale("quick", macro_accesses=5_000, micro_requests=8_000, verify_accesses=1_500),
        Scale("medium", macro_accesses=20_000, micro_requests=30_000, verify_accesses=3_000),
        Scale("paper", macro_accesses=50_000, micro_requests=100_000, verify_accesses=5_000),
    )
}


def _macro_config(policy: str) -> SystemConfig:
    return baseline_config(num_cores=len(MACRO_MIX), policy=policy)


class _TickTimer:
    """Wraps ``engine.tick``, accumulating wall time spent inside it.

    Installed as an instance attribute on the engine (shadowing the bound
    method), so every call site — including the run loop's hoisted local —
    goes through it.  The overhead (two ``perf_counter`` calls per tick)
    is identical for both scheduler implementations, so speedup ratios
    are unaffected.
    """

    __slots__ = ("_inner", "elapsed", "calls")

    def __init__(self, inner):
        self._inner = inner
        self.elapsed = 0.0
        self.calls = 0

    def __call__(self, channel_id: int, now: int):
        start = perf_counter()
        result = self._inner(channel_id, now)
        self.elapsed += perf_counter() - start
        self.calls += 1
        return result


# -- macrobench ------------------------------------------------------------


def run_macro(
    policy: str,
    scale: str,
    scheduler: str = "optimized",
    *,
    seed: int = MACRO_SEED,
) -> Dict[str, object]:
    """Run the campaign-preset macrobench once; return its measurements.

    ``tick_loop_s`` is the wall time spent inside ``engine.tick`` (the
    scheduling hot path); ``cycles_per_sec`` and ``tick_cycles_per_sec``
    divide the simulated cycle count by end-to-end and tick-loop wall
    time respectively.
    """
    sizing = SCALES[scale]
    system = System(
        _macro_config(policy), list(MACRO_MIX), seed=seed, scheduler=scheduler
    )
    timer = _TickTimer(system.engine.tick)
    system.engine.tick = timer  # instance attr shadows the bound method
    start = perf_counter()
    result = system.run(sizing.macro_accesses)
    wall = perf_counter() - start
    cycles = result.total_cycles
    return {
        "scheduler": scheduler,
        "accesses_per_core": sizing.macro_accesses,
        "cycles": cycles,
        "wall_s": round(wall, 6),
        "cycles_per_sec": round(cycles / wall, 1) if wall else None,
        "tick_loop_s": round(timer.elapsed, 6),
        "tick_calls": timer.calls,
        "tick_cycles_per_sec": (
            round(cycles / timer.elapsed, 1) if timer.elapsed else None
        ),
    }


def bench_macro_policy(policy: str, scale: str, repeats: int = 1) -> Dict[str, object]:
    """Macrobench one policy on both schedulers; best-of-``repeats``.

    Both variants are interleaved within each repeat round so transient
    machine load hits them symmetrically.
    """
    best: Dict[str, Dict[str, object]] = {}
    for _ in range(max(1, repeats)):
        for scheduler in ("optimized", "reference"):
            sample = run_macro(policy, scale, scheduler)
            incumbent = best.get(scheduler)
            if incumbent is None or sample["wall_s"] < incumbent["wall_s"]:
                best[scheduler] = sample
    opt, ref = best["optimized"], best["reference"]
    return {
        "optimized": opt,
        "reference": ref,
        "speedup_end_to_end": round(
            opt["cycles_per_sec"] / ref["cycles_per_sec"], 3
        ),
        "speedup_tick_loop": round(
            opt["tick_cycles_per_sec"] / ref["tick_cycles_per_sec"], 3
        ),
    }


# -- tick-loop microbench --------------------------------------------------


def run_micro(
    policy: str,
    scale: str,
    scheduler: str = "optimized",
    *,
    seed: int = 3,
) -> Dict[str, object]:
    """Drive ``engine.tick`` directly on a synthetic request population.

    A fresh engine (built with the macrobench's config so the policy,
    tracker and dropper wiring match production) is loaded with
    ``micro_requests`` pseudo-random requests — mixed demand/prefetch,
    spread across cores, banks and rows — and then ticked to exhaustion.
    Only the tick loop is timed; request construction and admission are
    excluded (overflow draining, which happens inside ``tick``, is part
    of the measured path by design — it is part of every real round).
    """
    sizing = SCALES[scale]
    system = System(
        _macro_config(policy), list(MACRO_MIX), seed=seed, scheduler=scheduler
    )
    engine = system.engine
    rng = random.Random(seed)
    num_cores = len(MACRO_MIX)
    for arrival in range(sizing.micro_requests):
        request = engine.build_request(
            line_addr=rng.randrange(1 << 26),
            core_id=rng.randrange(num_cores),
            is_prefetch=rng.random() < 0.5,
            now=arrival,
        )
        engine.enqueue_demand(request)  # overflow FIFO absorbs the excess
    admitted = engine.stats.enqueued_total
    num_channels = engine.config.num_channels
    stats = engine.stats
    tick = engine.tick
    now = 0
    ticks = 0
    start = perf_counter()
    while stats.serviced_total + stats.dropped_prefetches < admitted:
        next_now = None
        for channel_id in range(num_channels):
            _, wake = tick(channel_id, now)
            ticks += 1
            if wake is not None and (next_now is None or wake < next_now):
                next_now = wake
        now = next_now if next_now is not None and next_now > now else now + 1
    elapsed = perf_counter() - start
    return {
        "scheduler": scheduler,
        "requests": admitted,
        "cycles": now,
        "ticks": ticks,
        "wall_s": round(elapsed, 6),
        "cycles_per_sec": round(now / elapsed, 1) if elapsed else None,
        "requests_per_sec": round(admitted / elapsed, 1) if elapsed else None,
    }


def bench_micro_policy(policy: str, scale: str, repeats: int = 1) -> Dict[str, object]:
    """Microbench one policy on both schedulers; best-of-``repeats``."""
    best: Dict[str, Dict[str, object]] = {}
    for _ in range(max(1, repeats)):
        for scheduler in ("optimized", "reference"):
            sample = run_micro(policy, scale, scheduler)
            incumbent = best.get(scheduler)
            if incumbent is None or sample["wall_s"] < incumbent["wall_s"]:
                best[scheduler] = sample
    opt, ref = best["optimized"], best["reference"]
    return {
        "optimized": opt,
        "reference": ref,
        "speedup": round(opt["requests_per_sec"] / ref["requests_per_sec"], 3),
    }


# -- equivalence -----------------------------------------------------------


def verify_equivalence(
    policies: Sequence[str],
    scale: str,
    *,
    mixes: Sequence[Sequence[str]] = VERIFY_MIXES,
    seeds: Sequence[int] = VERIFY_SEEDS,
) -> Dict[str, object]:
    """Optimized vs reference differential over policies × mixes × seeds.

    Returns ``{"cases": N, "mismatches": [case descriptions]}``; an empty
    mismatch list certifies byte-identical ``SimResult.to_dict()`` for
    every case.
    """
    accesses = SCALES[scale].verify_accesses
    mismatches: List[str] = []
    cases = 0
    for policy in policies:
        for mix in mixes:
            for seed in seeds:
                cases += 1
                config = baseline_config(num_cores=len(mix), policy=policy)
                outputs = []
                for scheduler in ("optimized", "reference"):
                    system = System(
                        config, list(mix), seed=seed, scheduler=scheduler
                    )
                    outputs.append(system.run(accesses).to_dict())
                if outputs[0] != outputs[1]:
                    mismatches.append(
                        f"policy={policy} mix={','.join(mix)} seed={seed}"
                    )
    return {"cases": cases, "mismatches": mismatches}


# -- report + regression ---------------------------------------------------


def build_report(
    scale: str,
    policies: Sequence[str],
    *,
    repeats: int = 1,
    verify: bool = True,
    run_micro_bench: bool = True,
    progress=None,
) -> Dict[str, object]:
    """Run the full bench matrix and assemble the report document."""

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    report: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "bench": BENCH_NAME,
        "scale": scale,
        "macro": {
            "mix": list(MACRO_MIX),
            "seed": MACRO_SEED,
            "accesses_per_core": SCALES[scale].macro_accesses,
            "policies": {},
        },
        "micro": {"requests": SCALES[scale].micro_requests, "policies": {}},
    }
    if verify:
        note("verifying optimized == reference over the policy matrix ...")
        report["equivalence"] = verify_equivalence(policies, scale)
    for policy in policies:
        note(f"macrobench {policy} ...")
        report["macro"]["policies"][policy] = bench_macro_policy(
            policy, scale, repeats
        )
        if run_micro_bench:
            note(f"microbench {policy} ...")
            report["micro"]["policies"][policy] = bench_micro_policy(
                policy, scale, repeats
            )
    return report


def baseline_speedups(
    baseline: Dict[str, object], scale: str
) -> Optional[Dict[str, float]]:
    """Extract the baseline's tick-loop speedups comparable at ``scale``.

    Speedup ratios vary systematically with benchmark sizing (short runs
    amortize fewer rebuilds), so only same-scale numbers are comparable:
    the baseline's own macro section when its scale matches, else its
    ``speedups_by_scale`` side-table (recorded via ``--also-scales`` when
    the baseline was generated).  ``None`` when no comparable data exists.
    """
    if baseline.get("scale") == scale:
        policies = baseline.get("macro", {}).get("policies", {})
        return {
            policy: entry["speedup_tick_loop"]
            for policy, entry in policies.items()
            if entry.get("speedup_tick_loop")
        }
    per_scale = baseline.get("speedups_by_scale", {}).get(scale)
    if per_scale:
        return dict(per_scale)
    return None


def check_regression(
    current: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = 0.25,
) -> List[str]:
    """Compare speedup ratios against a baseline report.

    The optimized/reference speedup is measured within one process on one
    machine, so it transfers across machines (unlike absolute cycles/sec).
    A policy regresses when its tick-loop speedup drops more than
    ``threshold`` (fractional) below the baseline's recorded value at the
    same scale.  Returns a list of human-readable failures (empty = pass).
    """
    failures: List[str] = []
    if baseline.get("schema_version") != current.get("schema_version"):
        return [
            "baseline schema_version "
            f"{baseline.get('schema_version')!r} != current "
            f"{current.get('schema_version')!r}: regenerate the baseline"
        ]
    base_speedups = baseline_speedups(baseline, current.get("scale", ""))
    if base_speedups is None:
        return []  # no comparable baseline data at this scale
    cur_policies = current.get("macro", {}).get("policies", {})
    for policy, base_speedup in base_speedups.items():
        cur_entry = cur_policies.get(policy)
        if cur_entry is None:
            continue  # not benchmarked this run
        cur_speedup = cur_entry.get("speedup_tick_loop")
        if not cur_speedup:
            continue
        floor = base_speedup * (1.0 - threshold)
        if cur_speedup < floor:
            failures.append(
                f"{policy}: tick-loop speedup {cur_speedup:.2f}x fell below "
                f"{floor:.2f}x (baseline {base_speedup:.2f}x - {threshold:.0%})"
            )
    return failures


def load_report(path: str) -> Optional[Dict[str, object]]:
    """Read a bench report; None if the file is absent or unparseable."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def write_report(path: str, report: Dict[str, object]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
