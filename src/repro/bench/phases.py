"""Phase-attributed profiling for the macrobench (DESIGN.md §15).

The tick-loop timer answers "how much of the run is the scheduling
round?", but the front-end optimization work needs the complement broken
down further: of the time spent *outside* the controller, how much goes
to workload generation, to the core+cache model, to the prefetchers, to
telemetry?  :func:`run_phases` answers that with one deterministic
cProfile pass over the campaign-preset macrobench:

* every profiled function's **self time** (cProfile ``tottime``) is
  attributed to exactly one bucket by its defining module's path, so the
  buckets partition the profiled time — they sum to ``profiled_s``
  exactly, with no double counting;
* the bucket names are a stable, versioned contract
  (:data:`PHASE_BUCKETS`) — the report schema, the CLI table and the
  regression tests all key on them;
* wall time is measured with ``perf_counter_ns`` around the profiled
  run.  cProfile's per-call hook inflates wall time substantially (the
  simulator makes tens of millions of calls), so ``wall_s`` here is NOT
  comparable to the untimed macrobench wall — use the **shares**, which
  divide out the overhead, and the plain macrobench ``wall_s`` for
  absolute speed.

Bucket map (module path → bucket):

=============  ========================================================
bucket         modules
=============  ========================================================
``workload``   ``repro.workloads``, ``repro.trace``, numpy RNG builtins
``core_cache`` ``repro.sim``, ``repro.cache``, ``repro.core``
``prefetcher`` ``repro.prefetch``
``controller`` ``repro.controller``, ``repro.dram``
``telemetry``  ``repro.telemetry``, ``repro.metrics``
``other``      everything else (heapq, builtins, interpreter plumbing)
=============  ========================================================

``front_end_share`` is ``workload + core_cache + prefetcher`` over the
profiled total — the fraction of simulator self-time spent outside the
DRAM controller, i.e. the territory the front-end hot-path work targets.
"""

from __future__ import annotations

import cProfile
import pstats
from time import perf_counter_ns
from typing import Dict, Iterable, List, Optional

# The stable bucket contract.  Order is presentation order; tests pin
# the exact tuple, so adding/renaming a bucket is a schema change.
PHASE_BUCKETS = (
    "workload",
    "core_cache",
    "prefetcher",
    "controller",
    "telemetry",
    "other",
)

# Buckets counted as "front end" (everything except the DRAM controller
# back end; telemetry and interpreter overhead are reported separately).
FRONT_END_BUCKETS = ("workload", "core_cache", "prefetcher")

# (path markers, bucket) — first match wins.  Markers are substring
# matches on the '/'-normalized co_filename, so they work for installed
# packages and source checkouts alike.
_BUCKET_RULES = (
    (("/repro/workloads/", "/repro/trace/"), "workload"),
    (("/repro/sim/", "/repro/cache/", "/repro/core/"), "core_cache"),
    (("/repro/prefetch/",), "prefetcher"),
    (("/repro/controller/", "/repro/dram/"), "controller"),
    (("/repro/telemetry/", "/repro/metrics/"), "telemetry"),
)


def classify(filename: str, funcname: str = "") -> str:
    """Map one profiled function to its phase bucket.

    ``filename``/``funcname`` are the pstats key fields (``co_filename``
    and ``co_name``; C functions report ``'~'`` and a descriptive
    funcname).  The numpy Generator's batched draw methods are C-level
    builtins, but they do the workload's random number generation, so
    they are attributed to ``workload`` rather than ``other``.
    """
    path = filename.replace("\\", "/")
    for markers, bucket in _BUCKET_RULES:
        for marker in markers:
            if marker in path:
                return bucket
    if "numpy" in path or "numpy" in funcname:
        return "workload"
    return "other"


def run_phases(
    policy: str,
    scale: str,
    backend: str = "event",
    *,
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """Profile one macrobench run; return the phase-attributed breakdown.

    The simulated run is identical to :func:`repro.bench.run_macro`
    (same config, mix, seed and access count), so the attribution
    describes exactly the workload the bench report measures.
    """
    from repro.bench import MACRO_SEED, SCALES, _macro_config, MACRO_MIX
    from repro.sim.system import System

    if seed is None:
        seed = MACRO_SEED
    sizing = SCALES[scale]
    system = System(
        _macro_config(policy), list(MACRO_MIX), seed=seed, backend=backend
    )
    profiler = cProfile.Profile()
    start = perf_counter_ns()
    profiler.enable()
    result = system.run(sizing.macro_accesses)
    profiler.disable()
    wall_s = (perf_counter_ns() - start) / 1e9
    stats = pstats.Stats(profiler)
    buckets = {name: 0.0 for name in PHASE_BUCKETS}
    for (filename, _lineno, funcname), row in stats.stats.items():  # type: ignore[attr-defined]
        buckets[classify(filename, funcname)] += row[2]  # tt: self time
    profiled_s = sum(buckets.values())
    shares = {
        name: round(seconds / profiled_s, 4) if profiled_s else 0.0
        for name, seconds in buckets.items()
    }
    front_end = sum(buckets[name] for name in FRONT_END_BUCKETS)
    return {
        "policy": policy,
        "scale": scale,
        "backend": backend,
        "seed": seed,
        "accesses_per_core": sizing.macro_accesses,
        "cycles": result.total_cycles,
        "wall_s": round(wall_s, 6),
        "profiled_s": round(profiled_s, 6),
        "buckets": {name: round(buckets[name], 6) for name in PHASE_BUCKETS},
        "shares": shares,
        "front_end_share": (
            round(front_end / profiled_s, 4) if profiled_s else 0.0
        ),
    }


def phase_table(entries: Iterable[Dict[str, object]]) -> List[str]:
    """Render phase breakdowns as aligned CLI/CI lines (one per entry)."""
    lines = []
    for entry in entries:
        shares: Dict[str, float] = entry["shares"]  # type: ignore[assignment]
        cells = " | ".join(
            f"{name} {shares.get(name, 0.0):6.1%}" for name in PHASE_BUCKETS
        )
        lines.append(
            f"{entry['policy']:>18s}/{entry['backend']:<9s} {cells} "
            f"| front-end {entry['front_end_share']:6.1%}"
        )
    return lines


# -- wall-clock comparison against a previous-generation baseline ----------
#
# The tick-loop speedup check (repro.bench.check_regression) compares a
# machine-independent ratio and requires matching schema versions.  The
# wall check below is the end-to-end complement for the front-end work:
# it compares absolute ``wall_s`` per policy and backend against an
# *older-generation* report (e.g. BENCH_6.json, schema 2) at the same
# scale.  Wall time is machine-dependent, so the comparison only runs
# when the baseline has same-scale macro data, and the threshold is
# generous — it exists to catch a hot path that got materially slower,
# not to police noise.


def baseline_walls(
    baseline: Dict[str, object], scale: str
) -> "Dict[str, Dict[str, float]]":
    """Per-policy, per-backend ``wall_s`` from a report at ``scale``.

    Returns an empty dict when the baseline was generated at a different
    scale (absolute walls are only comparable at matched sizing) or
    carries no macro walls.  Schema version is deliberately ignored:
    this reads the stable ``macro.policies.<p>.<backend>.wall_s`` shape
    shared by every report generation.
    """
    if baseline.get("scale") != scale:
        return {}
    walls: Dict[str, Dict[str, float]] = {}
    policies = baseline.get("macro", {}).get("policies", {})  # type: ignore[union-attr]
    for policy, entry in policies.items():
        per_backend = {}
        for backend in ("event", "optimized", "reference"):
            cell = entry.get(backend)
            if isinstance(cell, dict) and cell.get("wall_s"):
                per_backend[backend] = cell["wall_s"]
        if per_backend:
            walls[policy] = per_backend
    return walls


def compare_walls(
    current: Dict[str, object], baseline: Dict[str, object]
) -> "Dict[str, Dict[str, Dict[str, float]]]":
    """Scale-matched wall_s speedups of ``current`` over ``baseline``.

    ``{policy: {backend: {baseline_wall_s, wall_s, speedup}}}``; empty
    when the scales differ or nothing overlaps.  ``speedup`` > 1 means
    the current code runs faster than the baseline recorded.
    """
    walls = baseline_walls(baseline, current.get("scale", ""))
    comparison: Dict[str, Dict[str, Dict[str, float]]] = {}
    cur_policies = current.get("macro", {}).get("policies", {})  # type: ignore[union-attr]
    for policy, backends in walls.items():
        cur_entry = cur_policies.get(policy)
        if not cur_entry:
            continue
        per_backend = {}
        for backend, base_wall in backends.items():
            cell = cur_entry.get(backend)
            cur_wall = cell.get("wall_s") if isinstance(cell, dict) else None
            if cur_wall:
                per_backend[backend] = {
                    "baseline_wall_s": base_wall,
                    "wall_s": cur_wall,
                    "speedup": round(base_wall / cur_wall, 3),
                }
        if per_backend:
            comparison[policy] = per_backend
    return comparison


#: Default fractional wall-regression threshold (fail past 1.5x slower).
#: Deliberately looser than the tick-loop check's 0.25: that check
#: compares a same-run speed *ratio*, while this one compares absolute
#: walls against a report recorded in an earlier session, where 10-20%
#: machine drift between recordings is routine.
WALL_THRESHOLD = 0.5


def check_wall_regression(
    current: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = WALL_THRESHOLD,
) -> List[str]:
    """Flag policy/backend cells whose wall time regressed past ``threshold``.

    A cell fails when its end-to-end wall is more than ``threshold``
    (fractional) slower than the baseline recorded at the same scale —
    i.e. speedup < 1/(1+threshold).  Returns human-readable failures;
    empty means pass (including the no-comparable-baseline case).
    """
    failures: List[str] = []
    floor = 1.0 / (1.0 + threshold)
    for policy, backends in sorted(compare_walls(current, baseline).items()):
        for backend, cell in sorted(backends.items()):
            if cell["speedup"] < floor:
                failures.append(
                    f"{policy}/{backend}: wall {cell['wall_s']:.3f}s is "
                    f"{1.0 / cell['speedup']:.2f}x the baseline's "
                    f"{cell['baseline_wall_s']:.3f}s "
                    f"(allowed: {1.0 + threshold:.2f}x)"
                )
    return failures


def best_wall_speedup(
    comparison: "Dict[str, Dict[str, Dict[str, float]]]",
) -> "Dict[str, object]":
    """The headline cell of a wall comparison: the largest speedup."""
    best: Dict[str, object] = {}
    for policy, backends in comparison.items():
        for backend, cell in backends.items():
            if not best or cell["speedup"] > best["speedup"]:  # type: ignore[operator]
                best = {"policy": policy, "backend": backend, **cell}
    return best
