"""Benchmark CLI: ``python -m repro.bench``.

Runs the tick-loop microbench and the campaign-preset macrobench over the
policy matrix and all three backends (event / optimized / reference),
verifies their byte-identity first, measures the event-vs-optimized
speedup certificate, writes the schema-versioned ``BENCH_10.json``
report, and (when a committed baseline exists) fails on a >25%
tick-loop-speedup regression.

``--phases`` adds the phase-attributed profile (DESIGN.md §15): one
cProfile pass per policy whose self-time is bucketed into workload /
core_cache / prefetcher / controller / telemetry / other, printed as a
table and recorded in the report.  When the previous-generation
``BENCH_6.json`` exists at the same scale, the end-to-end ``wall_s`` of
every policy/backend cell is compared against it (speedups printed and
recorded; a >50% wall regression fails the run — looser than the
tick-loop gate because absolute walls drift 10-20% between the machine
states that recorded the two reports).

Examples::

    python -m repro.bench --phases --scale tiny   # CI smoke
    python -m repro.bench --phases --scale medium # regenerate the baseline
    python -m repro.bench --policies padc --profile
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import (
    CERTIFY_PAIRS,
    CERTIFY_POLICY,
    DEFAULT_POLICIES,
    DEFAULT_REPORT,
    PREVIOUS_REPORT,
    SCALES,
    baseline_speedups,
    bench_macro_policy,
    build_report,
    check_regression,
    load_report,
    run_macro,
    write_report,
)
from repro.bench.phases import (
    WALL_THRESHOLD,
    best_wall_speedup,
    check_wall_regression,
    compare_walls,
    phase_table,
)


def _profile_macro(policy: str, scale: str, backend: str = "event") -> None:
    """Profile the macrobench run for one policy and backend.

    Uses ``pyinstrument`` when it is importable, ``cProfile`` (stdlib)
    otherwise — nothing is installed on demand.
    """
    try:
        from pyinstrument import Profiler  # type: ignore
    except ImportError:
        Profiler = None
    if Profiler is not None:
        profiler = Profiler()
        profiler.start()
        run_macro(policy, scale, backend)
        profiler.stop()
        print(profiler.output_text(unicode=True, color=False))
        return
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    run_macro(policy, scale, backend)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("tottime").print_stats(25)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="quick",
        help="benchmark sizing (default: quick)",
    )
    parser.add_argument(
        "--policies",
        default=",".join(DEFAULT_POLICIES),
        help="comma-separated policy list (default: the golden matrix)",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_REPORT,
        help=f"report path (default: {DEFAULT_REPORT})",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_REPORT,
        help="baseline report for the regression check (default: the "
        "committed report; read before --out is written)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="best-of-N repeats per measurement (default: 1)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="regression threshold on tick-loop speedup (default: 0.25)",
    )
    parser.add_argument(
        "--skip-verify",
        action="store_true",
        help="skip the event==optimized==reference equivalence sweep",
    )
    parser.add_argument(
        "--skip-micro",
        action="store_true",
        help="skip the tick-loop microbench",
    )
    parser.add_argument(
        "--skip-trace",
        action="store_true",
        help="skip the .rtr trace encode/decode throughput bench",
    )
    parser.add_argument(
        "--skip-certify",
        action="store_true",
        help="skip the paired event-vs-optimized speedup certificate",
    )
    parser.add_argument(
        "--certify-policy",
        default=CERTIFY_POLICY,
        help=f"policy cell for the speedup certificate (default: {CERTIFY_POLICY})",
    )
    parser.add_argument(
        "--certify-pairs",
        type=int,
        default=CERTIFY_PAIRS,
        help="paired alternation rounds for the certificate "
        f"(default: {CERTIFY_PAIRS})",
    )
    parser.add_argument(
        "--no-regression-check",
        action="store_true",
        help="do not compare against the baseline report",
    )
    parser.add_argument(
        "--phases",
        action="store_true",
        help="add the phase-attributed cProfile breakdown (workload / "
        "core_cache / prefetcher / controller / telemetry / other) per "
        "policy to the report and print it as a table",
    )
    parser.add_argument(
        "--phase-backend",
        default="event",
        choices=("event", "optimized", "reference"),
        help="backend the phase attribution profiles (default: event)",
    )
    parser.add_argument(
        "--wall-baseline",
        default=PREVIOUS_REPORT,
        help="previous-generation report for the scale-matched end-to-end "
        f"wall_s comparison (default: {PREVIOUS_REPORT}; schema version "
        "deliberately not required to match)",
    )
    parser.add_argument(
        "--wall-threshold",
        type=float,
        default=WALL_THRESHOLD,
        help="regression threshold on the end-to-end wall_s comparison "
        f"(default: {WALL_THRESHOLD}; looser than --threshold because "
        "absolute walls drift between the machine states that recorded "
        "the two reports)",
    )
    parser.add_argument(
        "--also-scales",
        default="",
        help="comma-separated extra scales whose tick-loop speedups are "
        "recorded into the report's speedups_by_scale side-table (makes "
        "the report usable as a regression baseline at those scales)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the event-backend padc macrobench (pyinstrument when "
        "available, else cProfile) and exit",
    )
    args = parser.parse_args(argv)
    policies = [p for p in args.policies.split(",") if p]

    if args.profile:
        _profile_macro(policies[0] if policies else "padc", args.scale)
        return 0

    # Read the baseline before (possibly) overwriting it via --out.
    baseline = None if args.no_regression_check else load_report(args.baseline)

    report = build_report(
        args.scale,
        policies,
        repeats=args.repeats,
        verify=not args.skip_verify,
        run_micro_bench=not args.skip_micro,
        run_trace_bench=not args.skip_trace,
        certify=not args.skip_certify,
        certify_policy=args.certify_policy,
        certify_pairs=args.certify_pairs,
        phases=args.phases,
        phase_backend=args.phase_backend,
        progress=lambda message: print(f"[bench] {message}", flush=True),
    )

    exit_code = 0
    equivalence = report.get("equivalence")
    if equivalence is not None:
        if equivalence["mismatches"]:
            print(
                f"[bench] EQUIVALENCE FAILURE ({len(equivalence['mismatches'])}"
                f"/{equivalence['cases']} cases):",
                file=sys.stderr,
            )
            for case in equivalence["mismatches"]:
                print(f"[bench]   {case}", file=sys.stderr)
            exit_code = 1
        else:
            print(
                f"[bench] equivalence: {equivalence['cases']} cases x "
                f"{len(equivalence['backends'])} backends, all byte-identical"
            )

    for policy, entry in report["macro"]["policies"].items():
        print(
            f"[bench] {policy:18s} event "
            f"{entry['event']['cycles_per_sec']:>12,.0f} cyc/s "
            f"({entry['speedup_event_end_to_end']:.2f}x vs optimized) | "
            f"optimized {entry['optimized']['cycles_per_sec']:>12,.0f} cyc/s "
            f"({entry['speedup_end_to_end']:.2f}x vs reference, tick-loop "
            f"{entry['speedup_tick_loop']:.2f}x)"
        )

    trace_bench = report.get("trace")
    if trace_bench is not None:
        print(
            f"[bench] trace: encode "
            f"{trace_bench['encode_entries_per_sec']:>12,.0f} entries/s, "
            f"decode {trace_bench['decode_entries_per_sec']:>12,.0f} entries/s "
            f"({trace_bench['bytes_per_entry']:.2f} B/entry, "
            f"{trace_bench['entries']:,} entries)"
        )

    certificate = report.get("certificate")
    if certificate is not None:
        print(
            f"[bench] certificate: event backend "
            f"{certificate['speedup_event_vs_optimized']:.2f}x vs optimized "
            f"({certificate['policy']}, {certificate['pairs']} pairs, "
            f"median of paired CPU-time ratios)"
        )

    phases_section = report.get("phases")
    if phases_section is not None:
        print(
            f"[bench] phases ({phases_section['backend']} backend, "
            "self-time shares):"
        )
        for line in phase_table(phases_section["policies"].values()):
            print(f"[bench]   {line}")

    if not args.no_regression_check:
        wall_baseline = load_report(args.wall_baseline)
        if wall_baseline is not None:
            comparison = compare_walls(report, wall_baseline)
            if comparison:
                report["wall_baseline"] = {
                    "path": args.wall_baseline,
                    "bench": wall_baseline.get("bench"),
                    "scale": wall_baseline.get("scale"),
                    "comparison": comparison,
                }
                best = best_wall_speedup(comparison)
                print(
                    f"[bench] wall vs {args.wall_baseline}: best "
                    f"{best['speedup']:.2f}x ({best['policy']}/"
                    f"{best['backend']}, {best['baseline_wall_s']:.3f}s -> "
                    f"{best['wall_s']:.3f}s)"
                )
                wall_failures = check_wall_regression(
                    report, wall_baseline, args.wall_threshold
                )
                if wall_failures:
                    print(
                        f"[bench] WALL REGRESSION vs {args.wall_baseline}:",
                        file=sys.stderr,
                    )
                    for failure in wall_failures:
                        print(f"[bench]   {failure}", file=sys.stderr)
                    exit_code = 1
            else:
                print(
                    f"[bench] {args.wall_baseline} has no wall_s data at "
                    f"scale {args.scale!r}; wall comparison skipped"
                )

    if baseline is not None:
        failures = check_regression(report, baseline, args.threshold)
        if failures:
            print("[bench] REGRESSION vs baseline:", file=sys.stderr)
            for failure in failures:
                print(f"[bench]   {failure}", file=sys.stderr)
            exit_code = 1
        elif baseline_speedups(baseline, args.scale) is None:
            print(
                f"[bench] baseline {args.baseline} has no data at scale "
                f"{args.scale!r}; regression check skipped"
            )
        else:
            print(f"[bench] no regression vs {args.baseline}")
    elif not args.no_regression_check:
        print(f"[bench] no baseline at {args.baseline}; regression check skipped")

    if args.also_scales:
        side_table = {}
        for extra_scale in args.also_scales.split(","):
            extra_scale = extra_scale.strip()
            if not extra_scale or extra_scale == args.scale:
                continue
            entries = {}
            for policy in policies:
                print(f"[bench] recording {extra_scale} speedup for {policy} ...")
                entry = bench_macro_policy(policy, extra_scale, args.repeats)
                entries[policy] = entry["speedup_tick_loop"]
            side_table[extra_scale] = entries
        if side_table:
            report["speedups_by_scale"] = side_table

    # Preserve a recorded pre-PR baseline section across regenerations.
    previous = load_report(args.out)
    if previous and "pre_pr_baseline" in previous and "pre_pr_baseline" not in report:
        report["pre_pr_baseline"] = previous["pre_pr_baseline"]

    write_report(args.out, report)
    print(f"[bench] wrote {args.out}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
