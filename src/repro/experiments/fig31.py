"""Figure 31: permutation-based page interleaving (§6.13).

The Zhang et al. bank-remapping scheme spreads row conflicts across
banks.  Paper: the remapping helps every policy (+3.8% baseline), and
PADC remains complementary (+5.4% WS over demand-first-with-permutation,
-11.3% traffic).
"""

from __future__ import annotations

from functools import partial

from repro.experiments.runner import (
    ExperimentResult,
    Scale,
    average,
    register,
    run_policies,
    speedup_metrics,
)
from repro.params import baseline_config
from repro.workloads import workload_mixes

VARIANTS = (
    ("no-pref", False),
    ("no-pref", True),
    ("demand-first", False),
    ("demand-first", True),
    ("aps", False),
    ("aps", True),
    ("padc", False),
    ("padc", True),
)


def _config(labels_to_variant, label: str):
    policy, permutation = labels_to_variant[label]
    return baseline_config(4, policy=policy, permutation=permutation)


@register("fig31")
def fig31(scale: Scale) -> ExperimentResult:
    labels_to_variant = {
        f"{policy}{'-perm' if permutation else ''}": (policy, permutation)
        for policy, permutation in VARIANTS
    }
    labels = list(labels_to_variant)
    mixes = workload_mixes(4, max(2, scale.mixes_4core // 2), seed=100)
    metrics = {label: {"ws": [], "traffic": []} for label in labels}
    for index, mix in enumerate(mixes):
        names = [profile.name for profile in mix]
        runs = run_policies(
            names,
            scale.accesses,
            policies=labels,
            seed=index,
            config_builder=partial(_config, labels_to_variant),
        )
        for label in labels:
            speedups = speedup_metrics(runs[label], names, scale.accesses, seed=index)
            metrics[label]["ws"].append(speedups["ws"])
            metrics[label]["traffic"].append(runs[label].total_traffic)
    result = ExperimentResult(
        "fig31",
        "Permutation-based page interleaving (4-core)",
        notes="Paper Fig.31: PADC complements the remapping scheme.",
    )
    for label in labels:
        result.rows.append(
            {
                "variant": label,
                "ws": average(metrics[label]["ws"]),
                "traffic": average(metrics[label]["traffic"]),
            }
        )
    return result
