"""Case studies I-III on the 4-core system (Figures 10-15).

* Case I  — four prefetch-friendly apps (swim, bwaves, leslie3d, soplex).
* Case II — four prefetch-unfriendly apps (art, galgel, ammp, milc).
* Case III — mixed (omnetpp, libquantum, galgel, GemsFDTD).

Each produces individual speedups, system metrics (WS/HS/UF), SPL and the
bus-traffic breakdown per application.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentResult,
    Scale,
    alone_ipcs,
    register,
    run_policies,
)
from repro.metrics import harmonic_speedup, unfairness, weighted_speedup

CASE_I = ("swim", "bwaves", "leslie3d", "soplex")
CASE_II = ("art", "galgel", "ammp", "milc")
CASE_III = ("omnetpp", "libquantum", "galgel", "GemsFDTD")


def case_study(
    experiment_id: str,
    title: str,
    mix: Sequence[str],
    scale: Scale,
    policies=DEFAULT_POLICIES,
    seed: int = 7,
) -> ExperimentResult:
    runs = run_policies(list(mix), scale.accesses, policies=policies, seed=seed)
    alone = alone_ipcs(mix, scale.accesses, seed=seed)
    result = ExperimentResult(experiment_id, title)
    for policy in policies:
        run = runs[policy]
        together = run.ipcs()
        breakdown = run.traffic_breakdown()
        row = {"policy": policy}
        for index, benchmark in enumerate(mix):
            row[f"IS_{benchmark}"] = together[index] / alone[index]
        row["ws"] = weighted_speedup(together, alone)
        row["hs"] = harmonic_speedup(together, alone)
        row["uf"] = unfairness(together, alone)
        row["spl"] = sum(core.spl for core in run.cores) / len(run.cores)
        row["traffic"] = run.total_traffic
        row["useless"] = breakdown["pref-useless"]
        row["dropped"] = run.dropped_prefetches
        result.rows.append(row)
    return result


@register("fig10_11")
def fig10_11(scale: Scale) -> ExperimentResult:
    return case_study(
        "fig10_11",
        "Case study I: four prefetch-friendly applications (4-core)",
        CASE_I,
        scale,
    )


@register("fig12_13")
def fig12_13(scale: Scale) -> ExperimentResult:
    return case_study(
        "fig12_13",
        "Case study II: four prefetch-unfriendly applications (4-core)",
        CASE_II,
        scale,
    )


@register("fig14_15")
def fig14_15(scale: Scale) -> ExperimentResult:
    return case_study(
        "fig14_15",
        "Case study III: mixed prefetch-friendly/unfriendly (4-core)",
        CASE_III,
        scale,
    )
