"""Figure 28: PADC under stride, C/DC and Markov prefetchers (§6.11).

Paper: PADC improves performance and bandwidth-efficiency with all three;
the Markov prefetcher benefits least (low accuracy, mostly APD-driven
traffic savings).
"""

from __future__ import annotations

from functools import partial

from repro.experiments.runner import (
    ExperimentResult,
    Scale,
    average,
    register,
    run_policies,
    speedup_metrics,
)
from repro.params import baseline_config
from repro.workloads import workload_mixes

PREFETCHERS = ("stride", "cdc", "markov")
POLICIES = ("no-pref", "demand-first", "demand-prefetch-equal", "padc")


def _config(prefetcher: str, policy: str):
    return baseline_config(4, policy=policy, prefetcher_kind=prefetcher)


@register("fig28")
def fig28(scale: Scale) -> ExperimentResult:
    mixes = workload_mixes(4, max(2, scale.mixes_4core // 2), seed=100)
    result = ExperimentResult(
        "fig28",
        "PADC with stride, C/DC and Markov prefetchers (4-core)",
        notes="Paper Fig.28: PADC helps all three; Markov benefits least.",
    )
    for prefetcher in PREFETCHERS:
        metrics = {policy: {"ws": [], "traffic": []} for policy in POLICIES}
        for index, mix in enumerate(mixes):
            names = [profile.name for profile in mix]
            runs = run_policies(
                names,
                scale.accesses,
                policies=POLICIES,
                seed=index,
                config_builder=partial(_config, prefetcher),
            )
            for policy in POLICIES:
                speedups = speedup_metrics(
                    runs[policy], names, scale.accesses, seed=index
                )
                metrics[policy]["ws"].append(speedups["ws"])
                metrics[policy]["traffic"].append(runs[policy].total_traffic)
        for policy in POLICIES:
            result.rows.append(
                {
                    "prefetcher": prefetcher,
                    "policy": policy,
                    "ws": average(metrics[policy]["ws"]),
                    "traffic": average(metrics[policy]["traffic"]),
                }
            )
    return result
