"""CLI: run registered experiments and print their tables.

Usage::

    python -m repro.experiments              # list experiments
    python -m repro.experiments fig01 fig16  # run specific ones
    python -m repro.experiments all          # run everything
    REPRO_SCALE=paper python -m repro.experiments all
"""

from __future__ import annotations

import sys
import time

from repro.experiments import REGISTRY, Scale, run_experiment


def main(argv) -> int:
    if not argv:
        print("available experiments:")
        for name in sorted(REGISTRY):
            print(f"  {name}")
        print("\nusage: python -m repro.experiments <name>... | all")
        return 0
    names = sorted(REGISTRY) if argv == ["all"] else argv
    scale = Scale.from_env()
    for name in names:
        start = time.time()
        result = run_experiment(name, scale)
        print(result.to_table())
        print(f"({time.time() - start:.1f}s)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
