"""CLI: run registered experiments and print their tables.

Usage::

    python -m repro.experiments                   # list experiments
    python -m repro.experiments fig01 fig16       # run specific ones
    python -m repro.experiments --all --jobs 8    # everything, 8 workers
    python -m repro.experiments all               # legacy spelling of --all
    REPRO_SCALE=paper python -m repro.experiments --all --jobs 0  # 0 = all cores

Results are served from the on-disk cache (``~/.cache/repro`` unless
``--cache-dir``/``$REPRO_CACHE_DIR`` says otherwise), so a rerun at the
same scale and seeds performs no new simulation work.  ``--no-cache``
(or ``$REPRO_CACHE=0``) disables it.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments import REGISTRY, Scale, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "names", nargs="*", help="experiment ids ('all' runs everything)"
    )
    parser.add_argument(
        "--all",
        action="store_true",
        dest="run_all",
        help="run every registered experiment",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for independent simulations "
        "(0 = one per CPU core; default $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk result cache location "
        "(default $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk result cache",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="checked mode: audit simulator invariants in every simulation "
        "(sets $REPRO_CHECK=1 so worker processes inherit it)",
    )
    return parser


def main(argv) -> int:
    args = _build_parser().parse_args(argv)
    if args.check:
        # Env rather than a kwarg so that ProcessPoolExecutor workers (and
        # every simulate() call inside the experiment generators) inherit it.
        os.environ["REPRO_CHECK"] = "1"
    names = [name for name in args.names if name != "all"]
    if args.run_all or len(names) != len(args.names):
        names = sorted(REGISTRY)
    if not names:
        print("available experiments:")
        for name in sorted(REGISTRY):
            print(f"  {name}")
        print("\nusage: python -m repro.experiments <name>... | --all")
        return 0
    if args.jobs is not None or args.cache_dir is not None or args.no_cache:
        from repro import runtime

        runtime.configure(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            cache_enabled=False if args.no_cache else None,
        )
    scale = Scale.from_env()
    for name in names:
        start = time.time()
        result = run_experiment(name, scale)
        print(result.to_table())
        print(f"({time.time() - start:.1f}s)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
