"""Shared infrastructure for the per-figure experiments.

* :class:`Scale` — run sizes (``quick`` for tests/benchmarks, ``paper``
  for the full overnight reproduction).
* :class:`ExperimentResult` — id, title, rows (list of dicts) and notes,
  with an ASCII table renderer.
* :func:`run_policies` / :func:`alone_ipc` / :func:`alone_ipcs` —
  memoized simulation helpers shared by all experiments (the paper
  measures IPC_alone with the demand-first policy, §5.2).

All simulations submit through :func:`repro.api.submit_many`:
independent jobs fan out over worker processes when
``--jobs``/``$REPRO_JOBS`` asks for more than one, and every result is
persisted to the on-disk cache so a rerun at the same scale and seeds
performs no new simulation work.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro import api
from repro.metrics import harmonic_speedup, unfairness, weighted_speedup
from repro.params import SystemConfig, baseline_config
from repro.runtime import SimJob, config_fingerprint
from repro.sim import SimResult

DEFAULT_POLICIES = (
    "no-pref",
    "demand-first",
    "demand-prefetch-equal",
    "aps",
    "padc",
)


@dataclass(frozen=True)
class Scale:
    """Run-size knobs for an experiment."""

    accesses: int = 5_000
    mixes_2core: int = 4
    mixes_4core: int = 4
    mixes_8core: int = 3
    single_core_benches: int = 15

    @staticmethod
    def from_env() -> "Scale":
        """Pick the scale from $REPRO_SCALE (tiny|quick|medium|paper).

        An unknown value is an error, not a silent fall-back to quick —
        an overnight "paper " run with a typo must die at startup, not
        after producing a full sweep at the wrong size.
        """
        name = os.environ.get("REPRO_SCALE", "quick")
        try:
            return SCALES[name]
        except KeyError:
            raise ValueError(
                f"unknown $REPRO_SCALE value {name!r}; "
                f"known scales: {', '.join(SCALES)}"
            ) from None


SCALES: Dict[str, Scale] = {
    "tiny": Scale(
        accesses=2_500,
        mixes_2core=2,
        mixes_4core=2,
        mixes_8core=1,
        single_core_benches=10,
    ),
    "quick": Scale(),
    "medium": Scale(
        accesses=12_000,
        mixes_2core=10,
        mixes_4core=8,
        mixes_8core=5,
        single_core_benches=15,
    ),
    "paper": Scale(
        accesses=40_000,
        mixes_2core=54,
        mixes_4core=32,
        mixes_8core=21,
        single_core_benches=55,
    ),
}


@dataclass
class ExperimentResult:
    """Rows reproducing one table/figure, plus provenance notes."""

    experiment_id: str
    title: str
    rows: List[Dict] = field(default_factory=list)
    notes: str = ""

    def to_table(self) -> str:
        """Render the rows as a fixed-width ASCII table."""
        if not self.rows:
            return f"[{self.experiment_id}] {self.title}\n(no rows)"
        # Ordered union of all row keys: a key present only in later rows
        # (e.g. a metric some policy cannot produce) still gets a column.
        columns: List[str] = []
        for row in self.rows:
            for column in row:
                if column not in columns:
                    columns.append(column)
        widths = {
            col: max(
                len(str(col)),
                max(len(_fmt(row.get(col, ""))) for row in self.rows),
            )
            for col in columns
        }
        lines = [f"[{self.experiment_id}] {self.title}"]
        lines.append("  ".join(str(col).ljust(widths[col]) for col in columns))
        lines.append("  ".join("-" * widths[col] for col in columns))
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(row.get(col, "")).ljust(widths[col]) for col in columns)
            )
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def column(self, name: str) -> List:
        return [row[name] for row in self.rows]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


REGISTRY: Dict[str, Callable[[Scale], ExperimentResult]] = {}


def register(name: str):
    """Decorator registering an experiment generator under ``name``."""

    def wrap(function):
        REGISTRY[name] = function
        return function

    return wrap


def run_experiment(name: str, scale: Optional[Scale] = None) -> ExperimentResult:
    """Run one registered experiment by name."""
    if name not in REGISTRY:
        raise KeyError(f"unknown experiment {name!r}; known: {sorted(REGISTRY)}")
    return REGISTRY[name](scale or Scale.from_env())


# -- memoized simulation helpers ---------------------------------------------

# In-process memo of alone IPCs, layered over the disk cache: repeated
# alone_ipc calls within one run skip even the cache-file read.
_ALONE_CACHE: Dict = {}


def alone_ipc(
    benchmark,
    accesses: int,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
) -> float:
    """IPC of ``benchmark`` running alone (demand-first policy, §5.2).

    ``benchmark`` is a profile name or a BenchmarkProfile (profiles are
    frozen/hashable, so both memoize).
    """
    return alone_ipcs([benchmark], accesses, config=config, seed=seed)[0]


def alone_ipcs(
    benchmarks: Sequence,
    accesses: int,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
) -> List[float]:
    """Alone IPCs for a whole mix, submitted as one parallel batch.

    Benchmark ``i`` runs with ``seed + i``, matching the seeds its
    multiprogrammed counterpart uses in :func:`speedup_metrics`.
    """
    base = config or baseline_config(1, policy="demand-first")
    if base.num_cores != 1:
        raise ValueError("alone_ipc requires a single-core config")
    keys = [
        (benchmark, accesses, seed + index, _config_key(config))
        for index, benchmark in enumerate(benchmarks)
    ]
    missing = [
        (index, benchmark)
        for index, benchmark in enumerate(benchmarks)
        if keys[index] not in _ALONE_CACHE
    ]
    if missing:
        jobs = [
            SimJob.make(base, [benchmark], accesses, seed=seed + index)
            for index, benchmark in missing
        ]
        for (index, _), result in zip(missing, api.submit_many(jobs)):
            _ALONE_CACHE[keys[index]] = result.cores[0].ipc
    return [_ALONE_CACHE[key] for key in keys]


def _config_key(config: Optional[SystemConfig]):
    """Memo key component for a config: a hash of *every* field.

    The old implementation enumerated a hand-picked tuple of fields and
    silently collided on anything outside it (dram.banks_per_channel,
    APD drop thresholds, ...); the full content hash cannot.
    """
    if config is None:
        return None
    return config_fingerprint(config)


def run_policies(
    benchmarks: Sequence[str],
    accesses: int,
    policies: Sequence[str] = DEFAULT_POLICIES,
    seed: int = 0,
    config_builder: Optional[Callable[[str], SystemConfig]] = None,
    **sim_kwargs,
) -> Dict[str, SimResult]:
    """Run one workload under several policies and return the results.

    The per-policy runs are independent, so they form one batch for the
    runtime: cache hits load from disk, misses fan out over ``--jobs``
    worker processes.
    """
    runs = []
    for policy in policies:
        if config_builder is not None:
            config = config_builder(policy)
        else:
            config = baseline_config(len(benchmarks), policy=policy)
        runs.append((config, benchmarks))
    results = api.submit_many(runs, accesses, seed=seed, **sim_kwargs)
    return dict(zip(policies, results))


def run_configs(
    configs: Sequence[SystemConfig],
    benchmarks: Sequence[str],
    accesses: int,
    seed: int = 0,
    **sim_kwargs,
) -> List[SimResult]:
    """Run one workload under several explicit configs as one batch."""
    return api.submit_many(
        [(config, benchmarks) for config in configs],
        accesses,
        seed=seed,
        **sim_kwargs,
    )


def speedup_metrics(
    result: SimResult,
    benchmarks: Sequence[str],
    accesses: int,
    alone_config: Optional[SystemConfig] = None,
    seed: int = 0,
) -> Dict[str, float]:
    """WS/HS/UF of a multiprogrammed run against demand-first alone runs."""
    alone = alone_ipcs(benchmarks, accesses, config=alone_config, seed=seed)
    together = result.ipcs()
    return {
        "ws": weighted_speedup(together, alone),
        "hs": harmonic_speedup(together, alone),
        "uf": unfairness(together, alone),
    }


def average(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
