"""Shared infrastructure for the per-figure experiments.

* :class:`Scale` — run sizes (``quick`` for tests/benchmarks, ``paper``
  for the full overnight reproduction).
* :class:`ExperimentResult` — id, title, rows (list of dicts) and notes,
  with an ASCII table renderer.
* :func:`run_policies` / :func:`alone_ipc` — memoized simulation helpers
  shared by all experiments (the paper measures IPC_alone with the
  demand-first policy, §5.2).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.metrics import harmonic_speedup, unfairness, weighted_speedup
from repro.params import SystemConfig, baseline_config
from repro.sim import SimResult, simulate

DEFAULT_POLICIES = (
    "no-pref",
    "demand-first",
    "demand-prefetch-equal",
    "aps",
    "padc",
)


@dataclass(frozen=True)
class Scale:
    """Run-size knobs for an experiment."""

    accesses: int = 5_000
    mixes_2core: int = 4
    mixes_4core: int = 4
    mixes_8core: int = 3
    single_core_benches: int = 15

    @staticmethod
    def from_env() -> "Scale":
        """Pick the scale from $REPRO_SCALE (quick|medium|paper)."""
        name = os.environ.get("REPRO_SCALE", "quick")
        return SCALES.get(name, SCALES["quick"])


SCALES: Dict[str, Scale] = {
    "tiny": Scale(
        accesses=2_500,
        mixes_2core=2,
        mixes_4core=2,
        mixes_8core=1,
        single_core_benches=10,
    ),
    "quick": Scale(),
    "medium": Scale(
        accesses=12_000,
        mixes_2core=10,
        mixes_4core=8,
        mixes_8core=5,
        single_core_benches=15,
    ),
    "paper": Scale(
        accesses=40_000,
        mixes_2core=54,
        mixes_4core=32,
        mixes_8core=21,
        single_core_benches=55,
    ),
}


@dataclass
class ExperimentResult:
    """Rows reproducing one table/figure, plus provenance notes."""

    experiment_id: str
    title: str
    rows: List[Dict] = field(default_factory=list)
    notes: str = ""

    def to_table(self) -> str:
        """Render the rows as a fixed-width ASCII table."""
        if not self.rows:
            return f"[{self.experiment_id}] {self.title}\n(no rows)"
        columns = list(self.rows[0].keys())
        widths = {
            col: max(
                len(str(col)),
                max(len(_fmt(row.get(col, ""))) for row in self.rows),
            )
            for col in columns
        }
        lines = [f"[{self.experiment_id}] {self.title}"]
        lines.append("  ".join(str(col).ljust(widths[col]) for col in columns))
        lines.append("  ".join("-" * widths[col] for col in columns))
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(row.get(col, "")).ljust(widths[col]) for col in columns)
            )
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def column(self, name: str) -> List:
        return [row[name] for row in self.rows]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


REGISTRY: Dict[str, Callable[[Scale], ExperimentResult]] = {}


def register(name: str):
    """Decorator registering an experiment generator under ``name``."""

    def wrap(function):
        REGISTRY[name] = function
        return function

    return wrap


def run_experiment(name: str, scale: Optional[Scale] = None) -> ExperimentResult:
    """Run one registered experiment by name."""
    if name not in REGISTRY:
        raise KeyError(f"unknown experiment {name!r}; known: {sorted(REGISTRY)}")
    return REGISTRY[name](scale or Scale.from_env())


# -- memoized simulation helpers ---------------------------------------------

_ALONE_CACHE: Dict = {}


def alone_ipc(
    benchmark,
    accesses: int,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
) -> float:
    """IPC of ``benchmark`` running alone (demand-first policy, §5.2).

    ``benchmark`` is a profile name or a BenchmarkProfile (profiles are
    frozen/hashable, so both memoize).
    """
    key = (benchmark, accesses, seed, _config_key(config))
    if key not in _ALONE_CACHE:
        base = config or baseline_config(1, policy="demand-first")
        if base.num_cores != 1:
            raise ValueError("alone_ipc requires a single-core config")
        result = simulate(base, [benchmark], max_accesses_per_core=accesses, seed=seed)
        _ALONE_CACHE[key] = result.cores[0].ipc
    return _ALONE_CACHE[key]


def _config_key(config: Optional[SystemConfig]):
    if config is None:
        return None
    return (
        config.policy,
        config.prefetcher.kind,
        config.cache.size_bytes,
        config.dram.num_channels,
        config.dram.row_buffer_bytes,
        config.dram.open_row_policy,
        config.dram.permutation_interleaving,
        config.core.runahead,
    )


def run_policies(
    benchmarks: Sequence[str],
    accesses: int,
    policies: Sequence[str] = DEFAULT_POLICIES,
    seed: int = 0,
    config_builder: Optional[Callable[[str], SystemConfig]] = None,
    **sim_kwargs,
) -> Dict[str, SimResult]:
    """Run one workload under several policies and return the results."""
    results = {}
    for policy in policies:
        if config_builder is not None:
            config = config_builder(policy)
        else:
            config = baseline_config(len(benchmarks), policy=policy)
        results[policy] = simulate(
            config,
            benchmarks,
            max_accesses_per_core=accesses,
            seed=seed,
            **sim_kwargs,
        )
    return results


def speedup_metrics(
    result: SimResult,
    benchmarks: Sequence[str],
    accesses: int,
    alone_config: Optional[SystemConfig] = None,
    seed: int = 0,
) -> Dict[str, float]:
    """WS/HS/UF of a multiprogrammed run against demand-first alone runs."""
    alone = [
        alone_ipc(benchmark, accesses, config=alone_config, seed=seed + index)
        for index, benchmark in enumerate(benchmarks)
    ]
    together = result.ipcs()
    return {
        "ws": weighted_speedup(together, alone),
        "hs": harmonic_speedup(together, alone),
        "uf": unfairness(together, alone),
    }


def average(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
