"""Tables 1-2: PADC hardware storage cost (§4.4).

Pure combinatorics; reproduces the paper's 34,720 bits (~4.25KB, 0.2% of
the 4-core system's L2 capacity) exactly.
"""

from __future__ import annotations

from repro.controller.cost import cost_as_fraction_of_l2, padc_storage_cost
from repro.experiments.runner import ExperimentResult, Scale, register


@register("table01_02")
def table01_02(scale: Scale) -> ExperimentResult:
    result = ExperimentResult(
        "table01_02",
        "PADC hardware storage cost per system size",
        notes="4-core row must match the paper exactly: 34,720 bits / 1,824 without P bits.",
    )
    for num_cores in (1, 2, 4, 8):
        cache_lines = (16384 if num_cores == 1 else 8192)
        request_entries = {1: 64, 2: 64, 4: 128, 8: 256}[num_cores]
        cost = padc_storage_cost(
            num_cores=num_cores,
            cache_lines_per_core=cache_lines,
            request_buffer_entries=request_entries,
        )
        l2_bytes = cache_lines * 64 * num_cores
        result.rows.append(
            {
                "cores": num_cores,
                "P": cost.prefetch_bits,
                "PSC+PUC+PAR": cost.psc_bits + cost.puc_bits + cost.par_bits,
                "U": cost.urgent_bits,
                "ID": cost.core_id_bits,
                "AGE": cost.age_bits,
                "total_bits": cost.total_bits,
                "total_KB": cost.total_bits / 8192,
                "no_P_bits": cost.total_bits_without_p_bits,
                "frac_of_L2": cost_as_fraction_of_l2(cost, l2_bytes),
            }
        )
    return result
