"""Tables 9-10: four identical applications on the 4-core system.

Table 9 runs 4 copies of libquantum (prefetch-friendly): the equal /
APS / PADC policies should all win and deliver the same speedup to every
instance.  Table 10 runs 4 copies of milc (prefetch-unfriendly): PADC
should beat every rigid policy by dropping useless prefetches evenly.
"""

from __future__ import annotations

from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentResult,
    Scale,
    alone_ipc,
    register,
    run_policies,
)
from repro.metrics import harmonic_speedup, unfairness, weighted_speedup


def identical_apps(
    experiment_id: str, benchmark: str, title: str, scale: Scale
) -> ExperimentResult:
    mix = [benchmark] * 4
    seed = 11
    alone = [
        alone_ipc(benchmark, scale.accesses, seed=seed + index)
        for index in range(4)
    ]
    runs = run_policies(mix, scale.accesses, DEFAULT_POLICIES, seed=seed)
    result = ExperimentResult(experiment_id, title)
    for policy in DEFAULT_POLICIES:
        together = runs[policy].ipcs()
        row = {"policy": policy}
        for index in range(4):
            row[f"IS_{index}"] = together[index] / alone[index]
        row["ws"] = weighted_speedup(together, alone)
        row["hs"] = harmonic_speedup(together, alone)
        row["uf"] = unfairness(together, alone)
        result.rows.append(row)
    return result


@register("table09")
def table09(scale: Scale) -> ExperimentResult:
    return identical_apps(
        "table09",
        "libquantum",
        "Four identical prefetch-friendly apps (4x libquantum)",
        scale,
    )


@register("table10")
def table10(scale: Scale) -> ExperimentResult:
    return identical_apps(
        "table10",
        "milc",
        "Four identical prefetch-unfriendly apps (4x milc)",
        scale,
    )
