"""Figures 19-20: PADC augmented with PAR-BS-style request ranking (§6.5).

Compares demand-first, PADC, and PADC-rank on the 4-core and 8-core
systems.  Paper: ranking improves unfairness on the 4-core system and
both fairness and performance on the more contended 8-core system.
"""

from __future__ import annotations

from repro.campaign import PolicyVariant
from repro.experiments.fig09 import multicore_overview
from repro.experiments.runner import ExperimentResult, Scale, register

RANK_POLICIES = (
    PolicyVariant.make("demand-first"),
    PolicyVariant.make("padc"),
    PolicyVariant.make("padc-rank", policy="padc", use_ranking=True),
)


@register("fig19")
def fig19(scale: Scale) -> ExperimentResult:
    return multicore_overview(
        "fig19",
        "PADC with request ranking, 4-core (WS/HS/UF/traffic)",
        num_cores=4,
        num_mixes=scale.mixes_4core,
        scale=scale,
        policies=RANK_POLICIES,
    )


@register("fig20")
def fig20(scale: Scale) -> ExperimentResult:
    return multicore_overview(
        "fig20",
        "PADC with request ranking, 8-core (WS/HS/UF/traffic)",
        num_cores=8,
        num_mixes=scale.mixes_8core,
        scale=scale,
        policies=RANK_POLICIES,
    )
