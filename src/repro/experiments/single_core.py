"""Single-core evaluation: Figures 6-8 and Tables 5 and 7.

One shared sweep (benchmark x policy) feeds four views:

* fig06 — IPC normalized to demand-first, plus the geometric mean;
* fig07 — stall time per load (SPL);
* fig08 — bus-traffic breakdown (demand / useful prefetch / useless);
* table05 — per-benchmark characteristics (IPC, MPKI, RBH, ACC, COV);
* table07 — row-buffer hit rate over useful requests (RBHU).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentResult,
    Scale,
    register,
    run_policies,
)
from repro.metrics import geometric_mean
from repro.sim import SimResult
from repro.workloads import ALL_BENCHMARKS

FIG6_BENCHMARKS = (
    "swim",
    "galgel",
    "art",
    "ammp",
    "gcc_06",
    "mcf_06",
    "libquantum",
    "omnetpp",
    "xalancbmk",
    "bwaves",
    "milc",
    "cactusADM",
    "leslie3d",
    "soplex",
    "lbm",
)

_SWEEP_CACHE: Dict = {}


def single_core_sweep(
    benchmarks: Sequence[str], accesses: int
) -> Dict[str, Dict[str, SimResult]]:
    """Run every benchmark under every policy (memoized)."""
    key = (tuple(benchmarks), accesses)
    if key not in _SWEEP_CACHE:
        _SWEEP_CACHE[key] = {
            benchmark: run_policies([benchmark], accesses, DEFAULT_POLICIES)
            for benchmark in benchmarks
        }
    return _SWEEP_CACHE[key]


def _bench_list(scale: Scale) -> Sequence[str]:
    if scale.single_core_benches <= len(FIG6_BENCHMARKS):
        return FIG6_BENCHMARKS[: scale.single_core_benches]
    names = list(FIG6_BENCHMARKS)
    for profile in ALL_BENCHMARKS:
        if profile.name not in names and len(names) < scale.single_core_benches:
            names.append(profile.name)
    return names


@register("fig06")
def fig06(scale: Scale) -> ExperimentResult:
    benchmarks = _bench_list(scale)
    sweep = single_core_sweep(benchmarks, scale.accesses)
    result = ExperimentResult(
        "fig06",
        "Single-core normalized IPC (to demand-first) per policy",
        notes="Paper: APS tracks the best rigid policy; PADC beats it on average.",
    )
    normalized = {policy: [] for policy in DEFAULT_POLICIES}
    for benchmark in benchmarks:
        runs = sweep[benchmark]
        base = runs["demand-first"].ipc()
        row = {"benchmark": benchmark}
        for policy in DEFAULT_POLICIES:
            value = runs[policy].ipc() / base
            row[policy] = value
            normalized[policy].append(value)
        result.rows.append(row)
    gmean_row = {"benchmark": f"gmean{len(benchmarks)}"}
    for policy in DEFAULT_POLICIES:
        gmean_row[policy] = geometric_mean(normalized[policy])
    result.rows.append(gmean_row)
    return result


@register("fig07")
def fig07(scale: Scale) -> ExperimentResult:
    benchmarks = _bench_list(scale)
    sweep = single_core_sweep(benchmarks, scale.accesses)
    result = ExperimentResult(
        "fig07",
        "Single-core stall time per load (SPL), cycles",
        notes="Paper: PADC reduces SPL ~5% vs demand-first on average.",
    )
    for benchmark in benchmarks:
        row = {"benchmark": benchmark}
        for policy in DEFAULT_POLICIES:
            row[policy] = sweep[benchmark][policy].cores[0].spl
        result.rows.append(row)
    mean_row = {"benchmark": "amean"}
    for policy in DEFAULT_POLICIES:
        values = [sweep[b][policy].cores[0].spl for b in benchmarks]
        mean_row[policy] = sum(values) / len(values)
    result.rows.append(mean_row)
    return result


@register("fig08")
def fig08(scale: Scale) -> ExperimentResult:
    benchmarks = _bench_list(scale)
    sweep = single_core_sweep(benchmarks, scale.accesses)
    result = ExperimentResult(
        "fig08",
        "Single-core bus traffic breakdown (cache lines)",
        notes="Paper: PADC cuts total traffic ~10% vs demand-first, mostly useless prefetches.",
    )
    for benchmark in benchmarks:
        for policy in DEFAULT_POLICIES:
            breakdown = sweep[benchmark][policy].traffic_breakdown()
            result.rows.append(
                {
                    "benchmark": benchmark,
                    "policy": policy,
                    "demand": breakdown["demand"],
                    "pref_useful": breakdown["pref-useful"],
                    "pref_useless": breakdown["pref-useless"],
                    "total": sum(breakdown.values()),
                }
            )
    return result


@register("table05")
def table05(scale: Scale) -> ExperimentResult:
    benchmarks = _bench_list(scale)
    sweep = single_core_sweep(benchmarks, scale.accesses)
    result = ExperimentResult(
        "table05",
        "Benchmark characteristics with/without the stream prefetcher",
        notes="Columns mirror paper Table 5 (IPC, MPKI, RBH, ACC, COV).",
    )
    for benchmark in benchmarks:
        no_pref = sweep[benchmark]["no-pref"]
        demand_first = sweep[benchmark]["demand-first"]
        core = demand_first.cores[0]
        result.rows.append(
            {
                "benchmark": benchmark,
                "ipc_nopref": no_pref.ipc(),
                "mpki_nopref": no_pref.cores[0].mpki,
                "ipc_pref": demand_first.ipc(),
                "mpki_pref": core.mpki,
                "rbh": demand_first.row_buffer_hit_rate,
                "acc": core.accuracy,
                "cov": core.coverage,
            }
        )
    return result


@register("table07")
def table07(scale: Scale) -> ExperimentResult:
    benchmarks = _bench_list(scale)
    sweep = single_core_sweep(benchmarks, scale.accesses)
    result = ExperimentResult(
        "table07",
        "Row-buffer hit rate over useful requests (RBHU)",
        notes=(
            "Paper: demand-pref-equal maximizes RBHU; APS stays close; "
            "demand-first is clearly lower."
        ),
    )
    for benchmark in benchmarks:
        row = {"benchmark": benchmark}
        for policy in DEFAULT_POLICIES:
            row[policy] = sweep[benchmark][policy].cores[0].rbhu
        result.rows.append(row)
    return result
