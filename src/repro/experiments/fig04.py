"""Figure 4: why old prefetch requests are likely useless (milc).

(a) Histogram of prefetch memory service times under demand-first, split
into useful vs useless — useless prefetches should dominate the long-
service-time tail.  (b) The stream prefetcher's accuracy measured every
interval, showing milc's strong phase behaviour.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.runner import ExperimentResult, Scale, register
from repro.params import baseline_config
from repro.runtime import SimJob, get_runtime

HISTOGRAM_EDGES = (200, 400, 600, 800, 1000, 1200, 1400, 1600)


def _bucket(value: int) -> str:
    previous = 0
    for edge in HISTOGRAM_EDGES:
        if value <= edge:
            return f"{previous + 1}-{edge}"
        previous = edge
    return f"{HISTOGRAM_EDGES[-1] + 1}+"


@register("fig04a")
def fig04a(scale: Scale) -> ExperimentResult:
    config = baseline_config(1, policy="demand-first")
    run = get_runtime().run(
        SimJob.make(
            config, ["milc"], scale.accesses * 2, collect_service_times=True
        )
    )
    core = run.cores[0]
    buckets = {}
    for kind, samples in (
        ("useful", core.useful_service_times),
        ("useless", core.useless_service_times),
    ):
        for sample in samples:
            key = _bucket(sample)
            buckets.setdefault(key, {"useful": 0, "useless": 0})[kind] += 1
    result = ExperimentResult(
        "fig04a",
        "milc prefetch service time histogram (demand-first)",
        notes="Useless prefetches should dominate the long-latency tail.",
    )
    ordered = [f"{a + 1}-{b}" for a, b in zip((0,) + HISTOGRAM_EDGES, HISTOGRAM_EDGES)]
    ordered.append(f"{HISTOGRAM_EDGES[-1] + 1}+")
    for key in ordered:
        counts = buckets.get(key, {"useful": 0, "useless": 0})
        result.rows.append(
            {
                "service_cycles": key,
                "useful": counts["useful"],
                "useless": counts["useless"],
            }
        )
    return result


@register("fig04b")
def fig04b(scale: Scale) -> ExperimentResult:
    # The paper samples accuracy every 100K cycles over a 200M-instruction
    # run; our scaled-down runs sample proportionally faster so several
    # phases fit into the trace slice.
    config = baseline_config(1, policy="demand-first")
    config = replace(config, padc=replace(config.padc, accuracy_interval=20_000))
    run = get_runtime().run(SimJob.make(config, ["milc"], scale.accesses * 3))
    history = run.accuracy_history[0]
    result = ExperimentResult(
        "fig04b",
        "milc prefetch accuracy per 100K-cycle interval",
        notes="Strong phase behaviour: long stretches of near-zero accuracy.",
    )
    for index, accuracy in enumerate(history):
        result.rows.append({"interval": index, "accuracy": accuracy})
    return result
