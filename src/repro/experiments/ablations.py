"""Ablation studies of PADC's design choices (beyond the paper's figures).

The paper fixes several design parameters with one-line justifications;
these experiments sweep them to show the sensitivity:

* ``ablation_drop_threshold`` — APD's 4-level dynamic threshold (Table 6)
  vs. fixed-low (drop everything old), fixed-high (drop almost nothing)
  and no dropping at all, on the prefetch-unfriendly case-II mix.
* ``ablation_promotion`` — APS's promotion threshold (85% in the paper)
  swept from 0.5 to 0.99 on the mixed case-III workload.
* ``ablation_interval`` — the accuracy-sampling interval (100K cycles in
  the paper): too short is noisy, too long misses phases (milc).
* ``ablation_aggressiveness`` — the stream prefetcher's degree/distance
  (4/64 in the paper) under demand-first vs PADC: PADC should tolerate
  over-aggressive settings better than the rigid policy.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.casestudies import CASE_II, CASE_III
from repro.experiments.runner import (
    ExperimentResult,
    Scale,
    alone_ipcs,
    register,
    run_configs,
)
from repro.metrics import weighted_speedup
from repro.params import baseline_config


def _ws(result, mix, accesses, seed):
    alone = alone_ipcs(mix, accesses, seed=seed)
    return weighted_speedup(result.ipcs(), alone)


@register("ablation_drop_threshold")
def ablation_drop_threshold(scale: Scale) -> ExperimentResult:
    mix, seed = list(CASE_II), 7
    variants = {
        "no-drop (aps)": None,
        "fixed-100": ((1.01, 100),),
        "fixed-100K": ((1.01, 100_000),),
        "dynamic (Table 6)": baseline_config(4).padc.drop_thresholds,
    }
    result = ExperimentResult(
        "ablation_drop_threshold",
        "APD drop-threshold policies on the prefetch-unfriendly mix",
        notes=(
            "The dynamic table should drop nearly as much junk as "
            "fixed-100 without its useful-prefetch casualties."
        ),
    )
    configs = []
    for thresholds in variants.values():
        if thresholds is None:
            configs.append(baseline_config(4, policy="aps"))
        else:
            config = baseline_config(4, policy="padc")
            configs.append(
                replace(
                    config,
                    padc=replace(config.padc, drop_thresholds=tuple(thresholds)),
                )
            )
    runs = run_configs(configs, mix, scale.accesses, seed=seed)
    for label, run in zip(variants, runs):
        result.rows.append(
            {
                "variant": label,
                "ws": _ws(run, mix, scale.accesses, seed),
                "traffic": run.total_traffic,
                "dropped": run.dropped_prefetches,
                "useless": run.traffic_breakdown()["pref-useless"],
            }
        )
    return result


@register("ablation_promotion")
def ablation_promotion(scale: Scale) -> ExperimentResult:
    mix, seed = list(CASE_III), 7
    result = ExperimentResult(
        "ablation_promotion",
        "APS promotion threshold sweep on the mixed workload",
        notes="The paper uses 0.85; low thresholds degenerate toward "
        "demand-prefetch-equal, high ones toward demand-first.",
    )
    thresholds = (0.5, 0.7, 0.85, 0.95, 0.99)
    configs = [
        replace(
            baseline_config(4, policy="aps"),
            padc=replace(baseline_config(4).padc, promotion_threshold=threshold),
        )
        for threshold in thresholds
    ]
    runs = run_configs(configs, mix, scale.accesses, seed=seed)
    for threshold, run in zip(thresholds, runs):
        result.rows.append(
            {
                "promotion_threshold": threshold,
                "ws": _ws(run, mix, scale.accesses, seed),
                "traffic": run.total_traffic,
            }
        )
    return result


@register("ablation_interval")
def ablation_interval(scale: Scale) -> ExperimentResult:
    seed = 7
    mix = ["milc", "milc", "milc", "milc"]
    result = ExperimentResult(
        "ablation_interval",
        "Accuracy-sampling interval sweep on phased milc (4 copies)",
        notes="The paper samples every 100K cycles; the interval must be "
        "short enough to catch milc's accuracy phases.",
    )
    intervals = (25_000, 100_000, 400_000)
    configs = [
        replace(
            baseline_config(4, policy="padc"),
            padc=replace(baseline_config(4).padc, accuracy_interval=interval),
        )
        for interval in intervals
    ]
    runs = run_configs(configs, mix, scale.accesses, seed=seed)
    for interval, run in zip(intervals, runs):
        result.rows.append(
            {
                "interval": interval,
                "ws": _ws(run, mix, scale.accesses, seed),
                "dropped": run.dropped_prefetches,
                "traffic": run.total_traffic,
            }
        )
    return result


@register("ablation_aggressiveness")
def ablation_aggressiveness(scale: Scale) -> ExperimentResult:
    mix, seed = list(CASE_II), 7
    result = ExperimentResult(
        "ablation_aggressiveness",
        "Stream prefetcher degree/distance under demand-first vs PADC",
        notes="PADC should tolerate over-aggressive prefetching better "
        "than the rigid policy (it drops the extra junk).",
    )
    points = [
        (degree, distance, policy)
        for degree, distance in ((1, 16), (2, 32), (4, 64), (8, 128))
        for policy in ("demand-first", "padc")
    ]
    configs = []
    for degree, distance, policy in points:
        config = baseline_config(4, policy=policy)
        configs.append(
            replace(
                config,
                prefetcher=replace(
                    config.prefetcher, degree=degree, distance=distance
                ),
            )
        )
    runs = run_configs(configs, mix, scale.accesses, seed=seed)
    for (degree, distance, policy), run in zip(points, runs):
        result.rows.append(
                {
                    "degree": degree,
                    "distance": distance,
                    "policy": policy,
                    "ws": _ws(run, mix, scale.accesses, seed),
                    "traffic": run.total_traffic,
                    "dropped": run.dropped_prefetches,
                }
            )
    return result
