"""Per-figure/table experiment definitions.

Every experiment in the paper's evaluation section has a generator here,
registered in :data:`REGISTRY`.  Each generator takes a
:class:`~repro.experiments.runner.Scale` and returns an
:class:`~repro.experiments.runner.ExperimentResult` whose rows mirror the
series the paper plots.  ``python -m repro.experiments <name>`` prints the
table for one experiment; the benchmark harness in ``benchmarks/`` wraps
the same generators.
"""

from repro.experiments.runner import (
    REGISTRY,
    ExperimentResult,
    Scale,
    register,
    run_experiment,
)

# Importing the modules populates REGISTRY via their @register decorators.
from repro.experiments import (  # noqa: E402,F401  (import for side effects)
    ablations,
    casestudies,
    cost_tables,
    fig01,
    fig02,
    fig04,
    fig09,
    fig16,
    fig17,
    fig19_20,
    fig21_22,
    fig23,
    fig24,
    fig25,
    fig26_27,
    fig28,
    fig29_30,
    fig31,
    fig32,
    single_core,
    table08,
    table09_10,
)

__all__ = [
    "REGISTRY",
    "ExperimentResult",
    "Scale",
    "register",
    "run_experiment",
]
