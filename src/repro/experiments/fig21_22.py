"""Figures 21-22: dual memory controllers (§6.6).

Two independent channels double peak bandwidth.  Paper: baselines improve
a lot, but PADC still wins (+5.9% WS on 4-core, +5.5% on 8-core) and
saves ~13% bandwidth.
"""

from __future__ import annotations

from repro.experiments.fig09 import multicore_overview
from repro.experiments.runner import ExperimentResult, Scale, register

DUAL_CHANNEL = {"num_channels": 2}


@register("fig21")
def fig21(scale: Scale) -> ExperimentResult:
    return multicore_overview(
        "fig21",
        "4-core system with two memory controllers",
        num_cores=4,
        num_mixes=scale.mixes_4core,
        scale=scale,
        overrides=DUAL_CHANNEL,
    )


@register("fig22")
def fig22(scale: Scale) -> ExperimentResult:
    return multicore_overview(
        "fig22",
        "8-core system with two memory controllers",
        num_cores=8,
        num_mixes=scale.mixes_8core,
        scale=scale,
        overrides=DUAL_CHANNEL,
    )
