"""Figures 29-30: comparison and combination with DDPF and FDP (§6.12).

Fig.29 pairs the filters with demand-first and with APS; Fig.30 pairs
them with demand-prefetch-equal.  Paper: the filters cut more traffic
than APD but also kill useful prefetches, so APD (and full PADC) wins on
performance while the filters win on raw bandwidth; APS composes with
either filter.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.runner import (
    ExperimentResult,
    Scale,
    average,
    register,
    run_policies,
    speedup_metrics,
)
from repro.params import baseline_config
from repro.workloads import workload_mixes

FIG29_VARIANTS = (
    ("demand-first", "demand-first", None),
    ("demand-first-ddpf", "demand-first", "ddpf"),
    ("demand-first-fdp", "demand-first", "fdp"),
    ("demand-first-apd", "demand-first-apd", None),
    ("aps-ddpf", "aps", "ddpf"),
    ("aps-fdp", "aps", "fdp"),
    ("aps-apd (PADC)", "padc", None),
)

FIG30_VARIANTS = (
    ("demand-first", "demand-first", None),
    ("demand-pref-equal", "demand-prefetch-equal", None),
    ("demand-pref-equal-ddpf", "demand-prefetch-equal", "ddpf"),
    ("demand-pref-equal-fdp", "demand-prefetch-equal", "fdp"),
    ("aps", "aps", None),
    ("aps-apd (PADC)", "padc", None),
)


def _filter_config(variants, label: str):
    for name, policy, filter_kind in variants:
        if name == label:
            return baseline_config(4, policy=policy, filter_kind=filter_kind)
    raise KeyError(label)


def _filters_experiment(
    experiment_id: str, title: str, variants, scale: Scale
) -> ExperimentResult:
    mixes = workload_mixes(4, max(2, scale.mixes_4core // 2), seed=100)
    labels = [name for name, _policy, _filter in variants]
    metrics = {label: {"ws": [], "traffic": []} for label in labels}
    for index, mix in enumerate(mixes):
        names = [profile.name for profile in mix]
        runs = run_policies(
            names,
            scale.accesses,
            policies=labels,
            seed=index,
            config_builder=partial(_filter_config, variants),
        )
        for label in labels:
            speedups = speedup_metrics(runs[label], names, scale.accesses, seed=index)
            metrics[label]["ws"].append(speedups["ws"])
            metrics[label]["traffic"].append(runs[label].total_traffic)
    result = ExperimentResult(experiment_id, title)
    for label in labels:
        result.rows.append(
            {
                "variant": label,
                "ws": average(metrics[label]["ws"]),
                "traffic": average(metrics[label]["traffic"]),
            }
        )
    return result


@register("fig29")
def fig29(scale: Scale) -> ExperimentResult:
    return _filters_experiment(
        "fig29",
        "DDPF / FDP / APD with demand-first and APS (4-core)",
        FIG29_VARIANTS,
        scale,
    )


@register("fig30")
def fig30(scale: Scale) -> ExperimentResult:
    return _filters_experiment(
        "fig30",
        "DDPF / FDP with demand-prefetch-equal vs PADC (4-core)",
        FIG30_VARIANTS,
        scale,
    )
