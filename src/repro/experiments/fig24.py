"""Figure 24: PADC under the closed-row buffer policy (§6.8).

The closed-row policy precharges a bank once no queued request targets
the open row.  Paper: PADC still improves WS ~7.6% over demand-first with
closed-row, though open-row PADC remains slightly better overall.
"""

from __future__ import annotations

from repro.experiments.fig09 import multicore_overview
from repro.experiments.runner import ExperimentResult, Scale, register

VARIANTS = (
    ("demand-first", True),
    ("demand-first", False),
    ("demand-prefetch-equal", False),
    ("aps", False),
    ("padc", False),
    ("padc", True),
)


@register("fig24")
def fig24(scale: Scale) -> ExperimentResult:
    rows = []
    for policy, open_row in VARIANTS:
        overview = multicore_overview(
            "fig24",
            "",
            num_cores=4,
            num_mixes=max(2, scale.mixes_4core // 2),
            scale=scale,
            policies=(policy,),
            overrides={"open_row": open_row},
        )
        row = dict(overview.rows[0])
        row["policy"] = f"{policy}{'-open' if open_row else '-closed'}"
        rows.append(row)
    result = ExperimentResult(
        "fig24",
        "Open-row vs closed-row policies (4-core)",
        rows=rows,
        notes="Paper Fig.24: PADC effective under both row-buffer policies.",
    )
    return result
