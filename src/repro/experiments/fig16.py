"""Figure 16: overall performance on the 4-core system.

Paper: PADC improves WS by 8.2% and HS by 4.1% over demand-first while
cutting bus traffic by ~10%.
"""

from __future__ import annotations

from repro.experiments.fig09 import multicore_overview
from repro.experiments.runner import ExperimentResult, Scale, register


@register("fig16")
def fig16(scale: Scale) -> ExperimentResult:
    return multicore_overview(
        "fig16",
        "4-core overall performance and bus traffic",
        num_cores=4,
        num_mixes=scale.mixes_4core,
        scale=scale,
    )
