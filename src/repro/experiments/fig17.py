"""Figure 17: overall performance on the 8-core system.

Paper: rigid policies make prefetching a net loss at 8 cores, while PADC
improves WS by 9.9% and cuts bandwidth 9.4% — the benefit grows with
core count because DRAM bandwidth becomes scarcer.
"""

from __future__ import annotations

from repro.experiments.fig09 import multicore_overview
from repro.experiments.runner import ExperimentResult, Scale, register


@register("fig17")
def fig17(scale: Scale) -> ExperimentResult:
    return multicore_overview(
        "fig17",
        "8-core overall performance and bus traffic",
        num_cores=8,
        num_mixes=scale.mixes_8core,
        scale=scale,
    )
