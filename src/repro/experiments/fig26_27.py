"""Figures 26-27: shared last-level cache (§6.10).

With a shared L2, one core's useless prefetches evict other cores' data,
so demand-prefetch-equal degrades sharply while PADC keeps winning
(+8.0% WS on 4-core, +7.6% on 8-core in the paper).
"""

from __future__ import annotations

from repro.experiments.fig09 import multicore_overview
from repro.experiments.runner import ExperimentResult, Scale, register

SHARED_L2 = {"shared_cache": True}


@register("fig26")
def fig26(scale: Scale) -> ExperimentResult:
    return multicore_overview(
        "fig26",
        "4-core system with a shared L2 cache",
        num_cores=4,
        num_mixes=scale.mixes_4core,
        scale=scale,
        overrides=SHARED_L2,
    )


@register("fig27")
def fig27(scale: Scale) -> ExperimentResult:
    return multicore_overview(
        "fig27",
        "8-core system with a shared L2 cache",
        num_cores=8,
        num_mixes=scale.mixes_8core,
        scale=scale,
        overrides=SHARED_L2,
    )
