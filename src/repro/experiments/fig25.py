"""Figure 25: sensitivity to last-level cache size (512KB-8MB/core, §6.9).

Paper: PADC wins at every cache size; demand-prefetch-equal starts
beating demand-first beyond 1MB per core (larger caches tolerate
pollution and raise prefetch accuracy), and APD's contribution shrinks.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentResult,
    Scale,
    average,
    register,
    run_policies,
    speedup_metrics,
)
from repro.params import baseline_config
from repro.workloads import BenchmarkProfile, get_profile

CACHE_KB_PER_CORE = (256, 512, 1024, 2048, 4096)


def _cache_walker(name: str, hot_lines: int) -> BenchmarkProfile:
    """A workload whose hot set cycles near the small-cache capacity.

    Its re-reference interval sits at the eviction horizon of the small
    cache points, so growing the L2 converts its misses into hits — the
    property Figure 25's sweep needs the workload population to have.
    """
    return BenchmarkProfile(
        name=name,
        pf_class=2,
        apki=30.0,
        stream_fraction=0.35,
        run_length=24,
        num_streams=4,
        ws_lines=200_000,
        hot_lines=hot_lines,
        hot_fraction=0.85,
    )


# Two mixes pairing cache-sensitive walkers with calibrated benchmarks.
def _mixes():
    return (
        [_cache_walker("walker3k", 3_500), get_profile("galgel"),
         get_profile("libquantum"), get_profile("gcc_06")],
        [_cache_walker("walker6k", 5_000), get_profile("omnetpp"),
         get_profile("leslie3d"), get_profile("dealII")],
    )


def _config(cache_kb: int, policy: str):
    return baseline_config(4, policy=policy, cache_kb_per_core=cache_kb)


@register("fig25")
def fig25(scale: Scale) -> ExperimentResult:
    mixes = _mixes()
    result = ExperimentResult(
        "fig25",
        "Weighted speedup vs L2 cache size per core (4-core)",
        notes="Paper Fig.25: PADC consistently best across cache sizes.",
    )
    for cache_kb in CACHE_KB_PER_CORE:
        alone_config = baseline_config(
            1, policy="demand-first", cache_kb_per_core=cache_kb
        )
        ws = {policy: [] for policy in DEFAULT_POLICIES}
        accesses = scale.accesses * 2  # long enough to exercise capacity
        for index, mix in enumerate(mixes):
            runs = run_policies(
                list(mix),
                accesses,
                seed=index,
                config_builder=partial(_config, cache_kb),
            )
            for policy in DEFAULT_POLICIES:
                ws[policy].append(
                    speedup_metrics(
                        runs[policy],
                        list(mix),
                        accesses,
                        alone_config=alone_config,
                        seed=index,
                    )["ws"]
                )
        row = {"cache_kb_per_core": cache_kb}
        for policy in DEFAULT_POLICIES:
            row[policy] = average(ws[policy])
        result.rows.append(row)
    return result
