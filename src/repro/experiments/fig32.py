"""Figure 32: PADC on a runahead-execution processor (§6.14).

Runahead issues future memory accesses as demand requests while the core
is stalled (with the only-train prefetcher update policy).  Paper:
runahead improves the baseline ~3.7%, and PADC still adds +6.7% WS and
-10.2% traffic on top.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.runner import (
    ExperimentResult,
    Scale,
    average,
    register,
    run_policies,
    speedup_metrics,
)
from repro.params import baseline_config
from repro.workloads import workload_mixes

VARIANTS = (
    ("no-pref", False),
    ("no-pref", True),
    ("demand-first", False),
    ("demand-first", True),
    ("aps", False),
    ("aps", True),
    ("padc", False),
    ("padc", True),
)


def _config(labels_to_variant, label: str):
    policy, runahead = labels_to_variant[label]
    return baseline_config(4, policy=policy, runahead=runahead)


@register("fig32")
def fig32(scale: Scale) -> ExperimentResult:
    labels_to_variant = {
        f"{policy}{'-ra' if runahead else ''}": (policy, runahead)
        for policy, runahead in VARIANTS
    }
    labels = list(labels_to_variant)
    mixes = workload_mixes(4, max(2, scale.mixes_4core // 2), seed=100)
    metrics = {label: {"ws": [], "traffic": []} for label in labels}
    for index, mix in enumerate(mixes):
        names = [profile.name for profile in mix]
        runs = run_policies(
            names,
            scale.accesses,
            policies=labels,
            seed=index,
            config_builder=partial(_config, labels_to_variant),
        )
        for label in labels:
            speedups = speedup_metrics(runs[label], names, scale.accesses, seed=index)
            metrics[label]["ws"].append(speedups["ws"])
            metrics[label]["traffic"].append(runs[label].total_traffic)
    result = ExperimentResult(
        "fig32",
        "PADC on a runahead execution processor (4-core)",
        notes="Paper Fig.32: PADC remains effective with runahead enabled.",
    )
    for label in labels:
        result.rows.append(
            {
                "variant": label,
                "ws": average(metrics[label]["ws"]),
                "traffic": average(metrics[label]["traffic"]),
            }
        )
    return result
