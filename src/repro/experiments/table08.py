"""Table 8: effect of prioritizing urgent requests (case study III).

Compares APS/PADC with and without the urgency rule.  Paper: without
urgency, demands of the prefetch-unfriendly cores starve behind the
critical requests of accurate-prefetcher cores, blowing up unfairness;
urgency restores fairness at little throughput cost.
"""

from __future__ import annotations

from repro.experiments.casestudies import CASE_III
from repro.experiments.runner import (
    ExperimentResult,
    Scale,
    alone_ipcs,
    register,
    run_configs,
)
from repro.metrics import harmonic_speedup, unfairness, weighted_speedup
from repro.params import baseline_config

VARIANTS = (
    ("demand-first", "demand-first", True),
    ("aps-no-urgent", "aps", False),
    ("aps", "aps", True),
    ("aps-apd-no-urgent", "padc", False),
    ("aps-apd (PADC)", "padc", True),
)


@register("table08")
def table08(scale: Scale) -> ExperimentResult:
    seed = 7
    mix = list(CASE_III)
    alone = alone_ipcs(mix, scale.accesses, seed=seed)
    result = ExperimentResult(
        "table08",
        "Effect of prioritizing urgent requests (case study III mix)",
        notes="Paper Table 8: urgency improves UF and HS substantially.",
    )
    configs = [
        baseline_config(4, policy=policy, use_urgency=use_urgency)
        for _, policy, use_urgency in VARIANTS
    ]
    runs = run_configs(configs, mix, scale.accesses, seed=seed)
    for (label, _, _), run in zip(VARIANTS, runs):
        together = run.ipcs()
        row = {"variant": label}
        for index, benchmark in enumerate(mix):
            row[f"IS_{benchmark}"] = together[index] / alone[index]
        row["uf"] = unfairness(together, alone)
        row["ws"] = weighted_speedup(together, alone)
        row["hs"] = harmonic_speedup(together, alone)
        result.rows.append(row)
    return result
