"""Figure 9: overall performance on the 2-core system.

Average WS/HS and bus traffic over random 2-benchmark mixes (the paper
averages 54 mixes; the quick scale uses fewer).

:func:`multicore_overview` — shared by every multiprogrammed overview
figure (9, 16, 17, 19-22, 24, 26, 27) — declares its whole grid as a
:class:`~repro.campaign.CampaignSpec` and submits it through the
campaign layer: every run is recorded in a persistent ledger, a crashed
job no longer kills the sweep (resume re-runs only it), and the figure
itself is just a view over the campaign's results.  Job content hashes
are unchanged, so results are numerically identical to the old direct
``run_policies``/``alone_ipcs`` path and share its cache entries.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.campaign import CampaignSpec, PolicyVariant, Workload, submit
from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentResult,
    Scale,
    average,
    register,
)
from repro.metrics import harmonic_speedup, unfairness, weighted_speedup
from repro.workloads import workload_mixes


def multicore_overview(
    experiment_id: str,
    title: str,
    num_cores: int,
    num_mixes: int,
    scale: Scale,
    policies: Sequence = DEFAULT_POLICIES,
    seed: int = 100,
    overrides: Optional[Mapping[str, object]] = None,
) -> ExperimentResult:
    """Shared machinery for the 2/4/8-core overview figures.

    ``policies`` entries are policy names or :class:`PolicyVariant`
    values (for relabelled/overridden points like "padc-rank");
    ``overrides`` are ``baseline_config`` keyword arguments applied to
    every grid cell (e.g. ``{"num_channels": 2}`` for the
    dual-controller figures).  Alone runs always use the paper's plain
    single-core demand-first baseline (§5.2), matching ``alone_ipcs``.
    """
    mixes = workload_mixes(num_cores, num_mixes, seed=seed)
    variants = [
        entry if isinstance(entry, PolicyVariant) else PolicyVariant.make(entry)
        for entry in policies
    ]
    spec = CampaignSpec.build(
        name=experiment_id,
        workloads=[
            Workload.make([profile.name for profile in mix], seed=index)
            for index, mix in enumerate(mixes)
        ],
        policies=variants,
        accesses=scale.accesses,
        variants={"base": dict(overrides or {})},
    )
    run = submit(spec)
    labels = [variant.label for variant in variants]
    metrics = {label: {"ws": [], "hs": [], "uf": [], "traffic": []} for label in labels}
    for index in range(len(mixes)):
        alone = run.alone_ipcs(index)
        for label in labels:
            result = run.grid(index, label)
            together = result.ipcs()
            metrics[label]["ws"].append(weighted_speedup(together, alone))
            metrics[label]["hs"].append(harmonic_speedup(together, alone))
            metrics[label]["uf"].append(unfairness(together, alone))
            metrics[label]["traffic"].append(result.total_traffic)
    result = ExperimentResult(experiment_id, title)
    for label in labels:
        result.rows.append(
            {
                "policy": label,
                "ws": average(metrics[label]["ws"]),
                "hs": average(metrics[label]["hs"]),
                "uf": average(metrics[label]["uf"]),
                "traffic": average(metrics[label]["traffic"]),
            }
        )
    result.notes = f"averaged over {len(mixes)} random {num_cores}-core mixes"
    return result


@register("fig09")
def fig09(scale: Scale) -> ExperimentResult:
    return multicore_overview(
        "fig09",
        "2-core overall performance and bus traffic",
        num_cores=2,
        num_mixes=scale.mixes_2core,
        scale=scale,
    )
