"""Figure 9: overall performance on the 2-core system.

Average WS/HS and bus traffic over random 2-benchmark mixes (the paper
averages 54 mixes; the quick scale uses fewer).
"""

from __future__ import annotations

from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentResult,
    Scale,
    average,
    register,
    run_policies,
    speedup_metrics,
)
from repro.workloads import workload_mixes


def multicore_overview(
    experiment_id: str,
    title: str,
    num_cores: int,
    num_mixes: int,
    scale: Scale,
    config_builder=None,
    policies=DEFAULT_POLICIES,
    seed: int = 100,
) -> ExperimentResult:
    """Shared machinery for the 2/4/8-core overview figures."""
    mixes = workload_mixes(num_cores, num_mixes, seed=seed)
    metrics = {policy: {"ws": [], "hs": [], "uf": [], "traffic": []} for policy in policies}
    for index, mix in enumerate(mixes):
        names = [profile.name for profile in mix]
        runs = run_policies(
            names,
            scale.accesses,
            policies=policies,
            seed=index,
            config_builder=config_builder,
        )
        for policy in policies:
            speedups = speedup_metrics(runs[policy], names, scale.accesses, seed=index)
            metrics[policy]["ws"].append(speedups["ws"])
            metrics[policy]["hs"].append(speedups["hs"])
            metrics[policy]["uf"].append(speedups["uf"])
            metrics[policy]["traffic"].append(runs[policy].total_traffic)
    result = ExperimentResult(experiment_id, title)
    for policy in policies:
        result.rows.append(
            {
                "policy": policy,
                "ws": average(metrics[policy]["ws"]),
                "hs": average(metrics[policy]["hs"]),
                "uf": average(metrics[policy]["uf"]),
                "traffic": average(metrics[policy]["traffic"]),
            }
        )
    result.notes = f"averaged over {len(mixes)} random {num_cores}-core mixes"
    return result


@register("fig09")
def fig09(scale: Scale) -> ExperimentResult:
    return multicore_overview(
        "fig09",
        "2-core overall performance and bus traffic",
        num_cores=2,
        num_mixes=scale.mixes_2core,
        scale=scale,
    )
