"""Figure 2: the rigid-scheduling walkthrough, reproduced exactly.

The paper's illustrative example: row A open; two prefetches (X, Z) hit
row A, one demand (Y) conflicts on row B; row-hit = 100 cycles,
row-conflict = 300 cycles, 25 cycles of computation between dependent
loads.  The paper's totals: useful prefetches — demand-first 725 vs
demand-prefetch-equal 575; useless prefetches — 325 vs 525.

Implemented as a tiny closed-form model over the same three requests, so
the numbers land exactly and the example doubles as a unit test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.experiments.runner import ExperimentResult, Scale, register

ROW_HIT = 100
ROW_CONFLICT = 300
COMPUTE = 25


@dataclass(frozen=True)
class WalkthroughRequest:
    """One request of the Figure 2 example."""

    name: str
    row: str
    is_prefetch: bool


REQUESTS = (
    WalkthroughRequest("X", "A", True),
    WalkthroughRequest("Y", "B", False),
    WalkthroughRequest("Z", "A", True),
)


def service_order(policy: str) -> List[WalkthroughRequest]:
    """Order the three requests the way each rigid policy would."""
    requests = list(REQUESTS)
    if policy == "demand-first":
        # Demands first; then FR-FCFS among the prefetches.
        return sorted(requests, key=lambda r: (r.is_prefetch,))
    if policy == "demand-prefetch-equal":
        # Row-hits first (X and Z hit the open row A), then the conflict.
        return sorted(requests, key=lambda r: (r.row != "A",))
    raise ValueError(policy)


def service_timeline(
    order: Sequence[WalkthroughRequest], open_row: str = "A"
) -> List[Tuple[str, int]]:
    """DRAM completion times for the given service order."""
    time = 0
    current_row = open_row
    completions = []
    for request in order:
        time += ROW_HIT if request.row == current_row else ROW_CONFLICT
        current_row = request.row
        completions.append((request.name, time))
    return completions


def execution_time(policy: str, prefetches_useful: bool) -> int:
    """Processor finish time for the Figure 2 scenario.

    With useful prefetches the program loads Y, X, Z serially with 25
    cycles of computation after each; with useless prefetches only Y is
    loaded (but X and Z still occupy DRAM ahead of Y when the policy lets
    them).
    """
    completions = dict(service_timeline(service_order(policy)))
    if not prefetches_useful:
        return completions["Y"] + COMPUTE
    time = 0
    for name in ("Y", "X", "Z"):
        # The processor stalls until the load's data is available, then
        # computes for 25 cycles before needing the next load.
        time = max(time, completions[name]) + COMPUTE
    return time


@register("fig02")
def fig02(scale: Scale) -> ExperimentResult:
    result = ExperimentResult(
        "fig02",
        "Rigid prefetch scheduling walkthrough (paper Figure 2)",
        notes="Exact paper numbers: 725/575 useful, 325/525 useless.",
    )
    for useful in (True, False):
        for policy in ("demand-first", "demand-prefetch-equal"):
            result.rows.append(
                {
                    "prefetches": "useful" if useful else "useless",
                    "policy": policy,
                    "total_cycles": execution_time(policy, useful),
                }
            )
    return result
