"""Figure 23: sensitivity to DRAM row-buffer size (2KB-128KB, §6.7).

Paper: PADC wins at every size; with very large row buffers the rigid
demand-first policy degrades below no-prefetching because breaking row
locality becomes increasingly expensive.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentResult,
    Scale,
    average,
    register,
    run_policies,
    speedup_metrics,
)
from repro.params import baseline_config
from repro.workloads import workload_mixes

ROW_BUFFER_KB = (2, 4, 16, 64, 128)


def _config(row_kb: int, policy: str):
    return baseline_config(4, policy=policy, row_buffer_kb=row_kb)


@register("fig23")
def fig23(scale: Scale) -> ExperimentResult:
    mixes = workload_mixes(4, max(2, scale.mixes_4core // 2), seed=100)
    result = ExperimentResult(
        "fig23",
        "Weighted speedup vs DRAM row-buffer size (4-core)",
        notes="Paper Fig.23: PADC consistently best across 2KB-128KB rows.",
    )
    for row_kb in ROW_BUFFER_KB:
        ws = {policy: [] for policy in DEFAULT_POLICIES}
        for index, mix in enumerate(mixes):
            names = [profile.name for profile in mix]
            runs = run_policies(
                names,
                scale.accesses,
                seed=index,
                config_builder=partial(_config, row_kb),
            )
            for policy in DEFAULT_POLICIES:
                ws[policy].append(
                    speedup_metrics(runs[policy], names, scale.accesses, seed=index)["ws"]
                )
        row = {"row_buffer_kb": row_kb}
        for policy in DEFAULT_POLICIES:
            row[policy] = average(ws[policy])
        result.rows.append(row)
    return result
