"""Figure 1: stream-prefetcher performance under two rigid policies.

Normalized IPC (to no-prefetching) for 10 benchmarks under demand-first
and demand-prefetch-equal.  Expected shape: the prefetch-unfriendly five
(galgel, ammp, art, milc, xalancbmk) prefer demand-first; the friendly
five (swim, libquantum, bwaves, leslie3d, lbm) prefer equal treatment.
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentResult,
    Scale,
    register,
    run_policies,
)

FIG1_BENCHMARKS = (
    "galgel",
    "ammp",
    "xalancbmk",
    "art",
    "milc",
    "swim",
    "libquantum",
    "bwaves",
    "leslie3d",
    "lbm",
)


@register("fig01")
def fig01(scale: Scale) -> ExperimentResult:
    result = ExperimentResult(
        "fig01",
        "Normalized performance of a stream prefetcher under rigid policies",
        notes=(
            "IPC normalized to no prefetching; paper Fig.1 shape: left five "
            "favor demand-first, right five favor demand-prefetch-equal."
        ),
    )
    for benchmark in FIG1_BENCHMARKS:
        runs = run_policies(
            [benchmark],
            scale.accesses,
            policies=("no-pref", "demand-first", "demand-prefetch-equal"),
        )
        base = runs["no-pref"].ipc()
        result.rows.append(
            {
                "benchmark": benchmark,
                "demand-first": runs["demand-first"].ipc() / base,
                "demand-pref-equal": runs["demand-prefetch-equal"].ipc() / base,
            }
        )
    return result
