"""DRAM refresh modelling.

Real SDRAM must refresh every row periodically: an all-bank auto-refresh
issues every tREFI and occupies the banks for tRFC, closing all row
buffers.  The paper's evaluation (like many controller studies) leaves
refresh out of the model, so it is disabled by default here and the
calibrated results do not include it; enabling it costs a few percent of
bandwidth and sprinkles extra row-closed accesses, which the tests
exercise.

Timings default to DDR3 values at the 4 GHz model clock:
tREFI = 7.8 us = 31,200 cycles, tRFC = 160 ns = 640 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.channel import Channel


@dataclass(frozen=True)
class RefreshConfig:
    """Auto-refresh parameters (disabled by default, like the paper)."""

    enabled: bool = False
    interval: int = 31_200
    cycles: int = 640


class RefreshScheduler:
    """Issues all-bank refreshes on a channel every ``interval`` cycles."""

    def __init__(self, config: RefreshConfig):
        self.config = config
        self.refreshes_issued = 0

    @classmethod
    def from_dram_config(cls, dram_config) -> "RefreshScheduler":
        """Build from a :class:`repro.params.DRAMConfig`."""
        return cls(
            RefreshConfig(
                enabled=dram_config.refresh_enabled,
                interval=dram_config.refresh_interval,
                cycles=dram_config.refresh_cycles,
            )
        )

    def next_refresh_after(self, now: int) -> int:
        """The first refresh boundary strictly after ``now``.

        The event backend schedules this timestamp as a wake event
        instead of polling every round, so boundaries must be computable
        in advance from ``now`` alone; a stateful (e.g. drift-correcting)
        refresh scheme would also need a new event source in
        ``sim/skipahead.py``.
        """
        interval = self.config.interval
        return ((now // interval) + 1) * interval

    def apply(self, channel: Channel, now: int) -> int:
        """Perform one all-bank refresh starting at ``now``.

        Every bank is occupied for tRFC and its row buffer closes (auto
        refresh precharges all banks).  Returns the cycle at which the
        channel's banks become available again.
        """
        done = now + self.config.cycles
        for bank in channel.banks:
            bank.busy_until = max(bank.busy_until, done)
            bank.precharge()
        self.refreshes_issued += 1
        return done

    def bandwidth_overhead(self) -> float:
        """Fraction of time spent refreshing (tRFC / tREFI)."""
        return self.config.cycles / self.config.interval
