"""DRAM substrate: address mapping, banks with row buffers, channels.

This package models the memory-system half of the paper's testbed: a
DDR3-style SDRAM with per-bank row buffers and a shared data bus per
channel, plus the physical address mapping (including permutation-based
page interleaving from Zhang et al. [38]).
"""

from repro.dram.address import AddressMapping, DecodedAddress
from repro.dram.bank import Bank, RowBufferState
from repro.dram.channel import Channel

__all__ = [
    "AddressMapping",
    "DecodedAddress",
    "Bank",
    "RowBufferState",
    "Channel",
]
