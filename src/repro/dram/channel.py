"""A DRAM channel: a set of banks sharing one command/data bus.

The channel provides the timing mechanics only; *which* request to service
is decided by a scheduling policy in :mod:`repro.controller`.  Servicing a
request occupies its bank for the command-sequence latency and then the
shared data bus for one burst; the bank is held until the burst completes
(it is sourcing the data).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.dram.bank import Bank, RowBufferState
from repro.params import DRAMConfig


class Channel:
    """Banks plus a shared data bus, with aggregate traffic counters."""

    def __init__(self, config: DRAMConfig, channel_id: int = 0):
        self.config = config
        self.channel_id = channel_id
        self.banks: List[Bank] = [
            Bank(config.timings) for _ in range(config.banks_per_channel)
        ]
        self.bus_busy_until: int = 0
        self.lines_transferred: int = 0
        # Lifetime data-bus cycles booked (one burst per line); the
        # telemetry layer differences it per interval for the bus
        # utilization series.
        self.bus_busy_cycles: int = 0

    def _reserve_bus(self, earliest: int, duration: int) -> int:
        """Book ``duration`` bus cycles, in scheduling order.

        Data-bus slots are granted in the order the controller schedules
        requests: a burst never overtakes an earlier-scheduled one, even
        if its data is ready first.  This matches the paper's service
        model — its Figure 2 timeline shows a scheduled row-conflict
        occupying the DRAM system until its data completes, with no
        overlap from later-scheduled row-hits — and it is what makes the
        scheduling ORDER carry the performance consequences the paper
        measures.
        """
        start = max(earliest, self.bus_busy_until)
        self.bus_busy_until = start + duration
        self.bus_busy_cycles += duration
        return start

    def bank_free(self, bank_idx: int, now: int) -> bool:
        return self.banks[bank_idx].busy_until <= now

    def service(self, bank_idx: int, row: int, now: int) -> Tuple[RowBufferState, int]:
        """Service one request on ``bank_idx`` starting at ``now``.

        Returns ``(row_buffer_state, completion_time)``.  The caller must
        ensure the bank is free at ``now``.

        Timing model (paper §2.1 / footnote 4): the bank is occupied for
        the full command sequence — CL for a row-hit, tRCD+CL row-closed,
        tRP+tRCD+CL row-conflict — and then for its data burst on the
        shared bus.  A single bank therefore delivers at most one line
        per row-hit latency (the paper's "highest throughput the DRAM
        bank can deliver"); the data bus needs several banks in flight to
        saturate.  Row-hit batching still pays because hits occupy the
        bank for roughly a third of a conflict.
        """
        bank = self.banks[bank_idx]
        if bank.busy_until > now:
            raise ValueError(
                f"bank {bank_idx} busy until {bank.busy_until}, now={now}"
            )
        work = bank.pre_burst_work(row, self.config.timings.pipelined_cas)
        state = bank.record_access(row)
        data_ready = now + work
        burst_start = self._reserve_bus(data_ready, self.config.timings.burst)
        burst_end = burst_start + self.config.timings.burst
        completion = burst_end + (
            self.config.timings.cl if self.config.timings.pipelined_cas else 0
        )
        bank.busy_until = burst_end
        bank.busy_cycles += burst_end - now
        self.lines_transferred += 1
        return state, completion

    def next_bank_free_time(self, bank_indices) -> int:
        """Earliest time any of ``bank_indices`` becomes free."""
        return min(self.banks[b].busy_until for b in bank_indices)

    def row_hit_rate(self) -> float:
        total = sum(b.total_accesses for b in self.banks)
        if not total:
            return 0.0
        hits = sum(b.hits for b in self.banks)
        return hits / total
