"""A DRAM channel: a set of banks sharing one command/data bus.

The channel provides the timing mechanics only; *which* request to service
is decided by a scheduling policy in :mod:`repro.controller`.  Servicing a
request occupies its bank for the command-sequence latency and then the
shared data bus for one burst; the bank is held until the burst completes
(it is sourcing the data).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.dram.bank import Bank, RowBufferState
from repro.params import DRAMConfig


class Channel:
    """Banks plus a shared data bus, with aggregate traffic counters."""

    def __init__(self, config: DRAMConfig, channel_id: int = 0):
        self.config = config
        self.channel_id = channel_id
        self.banks: List[Bank] = [
            Bank(config.timings) for _ in range(config.banks_per_channel)
        ]
        self.bus_busy_until: int = 0
        self.lines_transferred: int = 0
        # Lifetime data-bus cycles booked (one burst per line); the
        # telemetry layer differences it per interval for the bus
        # utilization series.
        self.bus_busy_cycles: int = 0
        # Hoisted timing constants for the service hot path: precomputed
        # (row_buffer_state, pre-burst work) pairs per access outcome.
        timings = config.timings
        self._burst = timings.burst
        self._pipelined_cas = timings.pipelined_cas
        self._post_burst = timings.cl if timings.pipelined_cas else 0
        hit_work = 0 if timings.pipelined_cas else timings.cl
        self._hit = (RowBufferState.HIT, hit_work)
        self._closed = (RowBufferState.CLOSED, timings.t_rcd + hit_work)
        self._conflict = (
            RowBufferState.CONFLICT,
            timings.t_rp + timings.t_rcd + hit_work,
        )

    def bank_free(self, bank_idx: int, now: int) -> bool:
        return self.banks[bank_idx].busy_until <= now

    def service(self, bank_idx: int, row: int, now: int) -> Tuple[RowBufferState, int]:
        """Service one request on ``bank_idx`` starting at ``now``.

        Returns ``(row_buffer_state, completion_time)``.  The caller must
        ensure the bank is free at ``now``.

        This body is inlined (with the outcome pairs above prebound) in
        ``DRAMControllerEngine.make_event_ticker``'s service loop — a
        behavioral change here must be mirrored there, or the golden
        equivalence matrix and the differential fuzzer will flag the
        event backend as divergent.

        Timing model (paper §2.1 / footnote 4): the bank is occupied for
        the full command sequence — CL for a row-hit, tRCD+CL row-closed,
        tRP+tRCD+CL row-conflict — and then for its data burst on the
        shared bus.  A single bank therefore delivers at most one line
        per row-hit latency (the paper's "highest throughput the DRAM
        bank can deliver"); the data bus needs several banks in flight to
        saturate.  Row-hit batching still pays because hits occupy the
        bank for roughly a third of a conflict.
        """
        bank = self.banks[bank_idx]
        if bank.busy_until > now:
            raise ValueError(
                f"bank {bank_idx} busy until {bank.busy_until}, now={now}"
            )
        burst = self._burst
        # Inlined Bank.access with the outcome pairs precomputed above.
        open_row = bank.open_row
        if open_row == row:
            bank.hits += 1
            state, work = self._hit
        elif open_row is None:
            bank.closed_accesses += 1
            state, work = self._closed
            bank.open_row = row
        else:
            bank.conflicts += 1
            state, work = self._conflict
            bank.open_row = row
        data_ready = now + work
        # Data-bus slots are granted in the order the controller schedules
        # requests: a burst never overtakes an earlier-scheduled one, even
        # if its data is ready first.  This matches the paper's service
        # model (Figure 2's scheduled row-conflict occupies the DRAM
        # system until its data completes) and is what makes scheduling
        # ORDER carry the performance consequences the paper measures.
        burst_start = max(data_ready, self.bus_busy_until)
        self.bus_busy_until = burst_end = burst_start + burst
        self.bus_busy_cycles += burst
        completion = burst_end + self._post_burst
        bank.busy_until = burst_end
        bank.busy_cycles += burst_end - now
        self.lines_transferred += 1
        return state, completion

    def next_bank_free_time(self, bank_indices) -> int:
        """Earliest time any of ``bank_indices`` becomes free."""
        return min(self.banks[b].busy_until for b in bank_indices)

    def row_hit_rate(self) -> float:
        total = sum(b.total_accesses for b in self.banks)
        if not total:
            return 0.0
        hits = sum(b.hits for b in self.banks)
        return hits / total
