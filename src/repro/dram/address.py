"""Physical address mapping from cache-line addresses to DRAM coordinates.

The simulator works in units of cache-line addresses (byte address divided
by the line size).  The mapping interleaves consecutive lines within a DRAM
row (column bits), then across channels, then across banks, with the row
index in the high bits — the conventional open-row-friendly layout.

``permutation`` enables the permutation-based page-interleaving scheme of
Zhang, Zhu and Zhang [38]: the bank index is XORed with the low bits of the
row index, spreading row-conflicting addresses across banks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import DRAMConfig


@dataclass(frozen=True)
class DecodedAddress:
    """DRAM coordinates of one cache line."""

    channel: int
    bank: int
    row: int
    column: int


class AddressMapping:
    """Decode line addresses into (channel, bank, row, column) tuples."""

    def __init__(self, config: DRAMConfig):
        self._lines_per_row = config.lines_per_row
        self._num_channels = config.num_channels
        self._num_banks = config.banks_per_channel
        self._permutation = config.permutation_interleaving
        self._bank_mask = self._num_banks - 1
        if self._num_banks & self._bank_mask:
            raise ValueError("banks_per_channel must be a power of two")

    def decode(self, line_addr: int) -> DecodedAddress:
        """Map a cache-line address to its DRAM coordinates."""
        channel, bank, row, column = self.decode_coords(line_addr)
        return DecodedAddress(channel=channel, bank=bank, row=row, column=column)

    def decode_coords(self, line_addr: int):
        """Decode into a plain ``(channel, bank, row, column)`` tuple.

        The request-construction hot path uses this form: a frozen
        dataclass costs an allocation plus four ``object.__setattr__``
        calls per request (DESIGN.md §10).
        """
        column = line_addr % self._lines_per_row
        rest = line_addr // self._lines_per_row
        channel = rest % self._num_channels
        rest //= self._num_channels
        bank = rest % self._num_banks
        row = rest // self._num_banks
        if self._permutation:
            bank = (bank ^ row) & self._bank_mask
        return channel, bank, row, column

    @property
    def lines_per_row(self) -> int:
        return self._lines_per_row
