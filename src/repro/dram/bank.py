"""A single SDRAM bank with its row buffer (sense amplifier).

Each bank tracks the currently open row (``None`` when precharged) and the
cycle at which it next becomes free.  ``access_latency`` classifies an
access as row-hit, row-closed or row-conflict and returns the corresponding
command-sequence latency (paper §2.1).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.params import DRAMTimings


class RowBufferState(enum.Enum):
    """Outcome classification for a bank access (paper §2.1)."""

    HIT = "row-hit"
    CLOSED = "row-closed"
    CONFLICT = "row-conflict"


class Bank:
    """One DRAM bank: open-row state plus a busy-until timestamp.

    ``busy_until`` doubles as a scheduling-relevant timestamp for the
    skip-ahead event backend (DESIGN.md §11): the engine's next-wake scan
    takes the minimum over non-empty bank queues, and the event loop
    advances the clock directly to it.  Anything that occupies a bank
    must therefore go through ``busy_until`` (as ``Channel.service`` and
    ``RefreshScheduler.apply`` do) — side-channel stalls would be
    invisible to the skip-ahead computation.
    """

    __slots__ = (
        "timings",
        "open_row",
        "busy_until",
        "hits",
        "closed_accesses",
        "conflicts",
        "busy_cycles",
    )

    def __init__(self, timings: DRAMTimings):
        self.timings = timings
        self.open_row: Optional[int] = None
        self.busy_until: int = 0
        self.hits = 0
        self.closed_accesses = 0
        self.conflicts = 0
        # Lifetime cycles this bank spent occupied (command sequence +
        # burst); the telemetry layer differences it per interval for the
        # per-bank utilization series.
        self.busy_cycles = 0

    def classify(self, row: int) -> RowBufferState:
        """Classify an access to ``row`` against the current row buffer."""
        if self.open_row is None:
            return RowBufferState.CLOSED
        if self.open_row == row:
            return RowBufferState.HIT
        return RowBufferState.CONFLICT

    def is_row_hit(self, row: int) -> bool:
        return self.open_row == row

    def access_latency(self, row: int) -> int:
        """Full command latency for an isolated access to ``row``."""
        state = self.classify(row)
        if state is RowBufferState.HIT:
            return self.timings.row_hit_latency
        if state is RowBufferState.CLOSED:
            return self.timings.row_closed_latency
        return self.timings.row_conflict_latency

    def pre_burst_work(self, row: int, pipelined_cas: bool = False) -> int:
        """Bank-occupying work before the data burst can start.

        The paper's timing model (its footnote 4: row-hit latency 12.5ns
        is "the highest throughput the DRAM bank can deliver") serializes
        the column access per bank, so a row-hit occupies its bank for CL
        before the burst; a closed row adds tRCD and a conflict
        tRP + tRCD.  ``pipelined_cas=True`` instead overlaps the column
        access with earlier bursts (modern-DDR behaviour), letting one
        bank stream at full bus rate.
        """
        state = self.classify(row)
        hit_work = 0 if pipelined_cas else self.timings.cl
        if state is RowBufferState.HIT:
            return hit_work
        if state is RowBufferState.CLOSED:
            return self.timings.t_rcd + hit_work
        return self.timings.t_rp + self.timings.t_rcd + hit_work

    def access(self, row: int, pipelined_cas: bool = False):
        """Fused ``record_access`` + ``pre_burst_work`` for the service path.

        Classifies once instead of twice; returns ``(state, work)``.
        """
        timings = self.timings
        hit_work = 0 if pipelined_cas else timings.cl
        open_row = self.open_row
        if open_row == row:
            self.hits += 1
            return RowBufferState.HIT, hit_work
        if open_row is None:
            self.closed_accesses += 1
            state = RowBufferState.CLOSED
            work = timings.t_rcd + hit_work
        else:
            self.conflicts += 1
            state = RowBufferState.CONFLICT
            work = timings.t_rp + timings.t_rcd + hit_work
        self.open_row = row
        return state, work

    def record_access(self, row: int) -> RowBufferState:
        """Update hit/conflict counters and open ``row``; return the state."""
        state = self.classify(row)
        if state is RowBufferState.HIT:
            self.hits += 1
        elif state is RowBufferState.CLOSED:
            self.closed_accesses += 1
        else:
            self.conflicts += 1
        self.open_row = row
        return state

    def precharge(self) -> None:
        """Close the row buffer (used by the closed-row policy)."""
        self.open_row = None

    @property
    def total_accesses(self) -> int:
        return self.hits + self.closed_accesses + self.conflicts

    def row_hit_rate(self) -> float:
        total = self.total_accesses
        return self.hits / total if total else 0.0
