"""Processing-core model: trace format and the ROB-occupancy core.

The core is a first-order model of the paper's 4-wide out-of-order
processor: it retires instructions at ``retire_width`` per cycle between
L2 accesses and keeps issuing past L2 misses (memory-level parallelism)
until the 256-entry reorder buffer fills behind the oldest outstanding
demand miss, at which point it stalls — the stalls are what the paper's
SPL metric measures.  Runahead execution (§6.14) issues future trace
accesses as demand requests while the core is stalled.
"""

from repro.core.core import CoreState
from repro.core.trace import TraceEntry

__all__ = ["CoreState", "TraceEntry"]
