"""Per-core simulation state.

``CoreState`` tracks trace consumption, outstanding demand misses and the
ROB-occupancy stall condition.  The event mechanics (what happens on an
access or a fill) live in :mod:`repro.sim.system`; this class holds the
bookkeeping and the model-level predicates.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, Optional

from repro.core.trace import TraceEntry
from repro.params import CoreConfig


class CoreState:
    """Bookkeeping for one processing core."""

    __slots__ = (
        "core_id",
        "config",
        "retire_width",
        "trace",
        "lookahead",
        "target_accesses",
        "accesses_done",
        "instructions_issued",
        "outstanding_demand",
        "stalled",
        "stall_start",
        "waiting_mshr",
        "pending_entry",
        "done",
        "finish_time",
        "stall_cycles",
        "loads",
        "l2_hits",
        "l2_misses",
        "mshr_stalls",
        "runahead_issued",
    )

    def __init__(
        self,
        core_id: int,
        config: CoreConfig,
        trace: Iterator[TraceEntry],
        target_accesses: int,
    ):
        self.core_id = core_id
        self.config = config
        self.retire_width = config.retire_width
        self.trace = trace
        self.lookahead: Deque[TraceEntry] = deque()
        self.target_accesses = target_accesses
        self.accesses_done = 0
        self.instructions_issued = 0
        # line_addr -> instructions_issued at the time the miss was sent.
        self.outstanding_demand: Dict[int, int] = {}
        self.stalled = False
        self.stall_start = 0
        self.waiting_mshr = False
        self.pending_entry: Optional[TraceEntry] = None
        self.done = False
        self.finish_time = 0
        self.stall_cycles = 0
        self.loads = 0
        self.l2_hits = 0
        self.l2_misses = 0
        self.mshr_stalls = 0
        self.runahead_issued = 0

    # -- trace consumption --------------------------------------------------

    def next_entry(self) -> Optional[TraceEntry]:
        """Consume the next trace entry (from the lookahead buffer first)."""
        if self.lookahead:
            return self.lookahead.popleft()
        return next(self.trace, None)

    def peek_ahead(self, depth: int) -> Deque[TraceEntry]:
        """Expose up to ``depth`` future entries without consuming them.

        Used by runahead execution: the entries remain in the lookahead
        buffer and will be re-executed when the core resumes, just as a
        runahead processor re-executes instructions after rollback.
        """
        while len(self.lookahead) < depth:
            entry = next(self.trace, None)
            if entry is None:
                break
            self.lookahead.append(entry)
        return self.lookahead

    # -- stall model ----------------------------------------------------------

    def rob_blocked(self) -> bool:
        """True when the ROB is full behind the oldest outstanding miss."""
        outstanding = self.outstanding_demand
        if not outstanding:
            return False
        # Entries are kept ordered by send time (writers delete-then-set on
        # re-insert), so the first value is the oldest — no min() scan.
        oldest = next(iter(outstanding.values()))
        return self.instructions_issued - oldest >= self.config.rob_size

    def exec_cycles(self, gap: int) -> int:
        """Cycles needed to issue ``gap`` instructions at full width."""
        width = self.config.retire_width
        return (gap + width - 1) // width

    # -- results ----------------------------------------------------------------

    @property
    def instructions_retired(self) -> int:
        """Total instructions: inter-access gaps plus the loads themselves."""
        return self.instructions_issued + self.accesses_done

    def ipc(self) -> float:
        if not self.finish_time:
            return 0.0
        return self.instructions_retired / self.finish_time

    def spl(self) -> float:
        """Stall cycles per load (the paper's SPL metric, §5.2)."""
        return self.stall_cycles / self.loads if self.loads else 0.0
