"""Trace file I/O: persist and replay L2-access traces.

Lets users capture a synthetic trace to disk, edit or generate their own
(e.g. converted from a real Pin/DynamoRIO capture), and feed it back to
the simulator.  The format is line-oriented, gzip-compressed text::

    # repro-trace v1
    <gap> <line_addr> <pc> [W]

One record per L2 access; ``W`` marks stores.  Blank lines and ``#``
comments are ignored.
"""

from __future__ import annotations

import gzip
import itertools
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.core.trace import TraceEntry

_HEADER = "# repro-trace v1"


def save_trace(
    entries: Iterable[TraceEntry],
    path: Union[str, Path],
    limit: int = None,
) -> int:
    """Write ``entries`` (up to ``limit``) to ``path``; returns the count."""
    if limit is not None:
        entries = itertools.islice(entries, limit)
    count = 0
    with gzip.open(path, "wt") as handle:
        handle.write(_HEADER + "\n")
        for entry in entries:
            record = f"{entry.gap} {entry.line_addr} {entry.pc}"
            if entry.is_write:
                record += " W"
            handle.write(record + "\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> Iterator[TraceEntry]:
    """Lazily read a trace file written by :func:`save_trace`."""
    with gzip.open(path, "rt") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) not in (3, 4):
                raise ValueError(
                    f"{path}:{line_number}: expected 'gap addr pc [W]', got {line!r}"
                )
            is_write = len(fields) == 4 and fields[3].upper() == "W"
            yield TraceEntry(
                int(fields[0]), int(fields[1]), int(fields[2]), is_write
            )
