"""Trace format consumed by the core model.

A trace is an iterator of :class:`TraceEntry` — one entry per *L2 access*
(the L1s are considered part of the workload): the number of instructions
executed since the previous L2 access, the cache-line address touched and
a synthetic PC identifying the access site (used by PC-indexed
prefetchers and filters).
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple


class TraceEntry(NamedTuple):
    """One L2 access in a core's instruction stream."""

    gap: int
    line_addr: int
    pc: int
    is_write: bool = False


def trace_from_tuples(tuples: Iterable) -> Iterator[TraceEntry]:
    """Adapt (gap, line_addr[, pc[, is_write]]) tuples to TraceEntries."""
    for item in tuples:
        if len(item) == 2:
            gap, line_addr = item
            yield TraceEntry(int(gap), int(line_addr), 0)
        elif len(item) == 3:
            gap, line_addr, pc = item
            yield TraceEntry(int(gap), int(line_addr), int(pc))
        else:
            gap, line_addr, pc, is_write = item[:4]
            yield TraceEntry(int(gap), int(line_addr), int(pc), bool(is_write))
