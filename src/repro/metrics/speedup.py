"""Multiprogram speedup metrics (paper §5.2 and §6.3.4).

Given per-application IPCs measured running *together* on the CMP and
*alone* on one core:

* ``IS_i = IPC_together_i / IPC_alone_i``
* ``WS = Σ IS_i``                     (system throughput [30])
* ``HS = N / Σ (1 / IS_i)``           (inverse job turnaround time [12])
* ``UF = max(IS) / min(IS)``          (unfairness [3])
"""

from __future__ import annotations

import math
from typing import List, Sequence


def individual_speedups(
    ipc_together: Sequence[float], ipc_alone: Sequence[float]
) -> List[float]:
    """IS_i per core; raises on mismatched lengths or zero alone-IPC."""
    if len(ipc_together) != len(ipc_alone):
        raise ValueError("ipc_together and ipc_alone must have equal length")
    speedups = []
    for together, alone in zip(ipc_together, ipc_alone):
        if alone <= 0:
            raise ValueError("alone IPC must be positive")
        speedups.append(together / alone)
    return speedups


def weighted_speedup(
    ipc_together: Sequence[float], ipc_alone: Sequence[float]
) -> float:
    """WS = sum of individual speedups (system throughput)."""
    return sum(individual_speedups(ipc_together, ipc_alone))


def harmonic_speedup(
    ipc_together: Sequence[float], ipc_alone: Sequence[float]
) -> float:
    """HS = harmonic mean of individual speedups (job turnaround)."""
    speedups = individual_speedups(ipc_together, ipc_alone)
    if any(s <= 0 for s in speedups):
        return 0.0
    return len(speedups) / sum(1.0 / s for s in speedups)


def unfairness(ipc_together: Sequence[float], ipc_alone: Sequence[float]) -> float:
    """UF = max(IS) / min(IS); 1.0 is perfectly fair (paper §6.3.4)."""
    speedups = individual_speedups(ipc_together, ipc_alone)
    low = min(speedups)
    if low <= 0:
        return math.inf
    return max(speedups) / low


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, used for the paper's gmean55-style averages."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
