"""Performance metrics from the paper's §5.2.

Speedup metrics for multiprogrammed workloads (IS, WS, HS, UF) and helper
aggregations (geometric mean, normalized IPC).
"""

from repro.metrics.speedup import (
    geometric_mean,
    harmonic_speedup,
    individual_speedups,
    unfairness,
    weighted_speedup,
)

__all__ = [
    "individual_speedups",
    "weighted_speedup",
    "harmonic_speedup",
    "unfairness",
    "geometric_mean",
]
