"""repro — a reproduction of "Prefetch-Aware DRAM Controllers".

Lee, Mutlu, Narasiman and Patt, MICRO-41 / TR-HPS-2008-002 (2008).

The package implements the paper's Prefetch-Aware DRAM Controller (PADC:
Adaptive Prefetch Scheduling + Adaptive Prefetch Dropping), the rigid
scheduling baselines it is compared against, and the full evaluation
substrate: a cycle-level DDR3 DRAM model, L2 caches with MSHRs, stream /
stride / C/DC / Markov prefetchers, DDPF and FDP prefetch filters,
runahead execution, and synthetic SPEC-like workloads.

Quickstart::

    from repro import baseline_config, simulate

    config = baseline_config(num_cores=4, policy="padc")
    result = simulate(config, ["swim", "art", "libquantum", "milc"])
    print(result.summary())
"""

from repro.controller import padc_storage_cost
from repro.metrics import (
    geometric_mean,
    harmonic_speedup,
    individual_speedups,
    unfairness,
    weighted_speedup,
)
from repro.params import (
    ALL_POLICIES,
    CacheConfig,
    CoreConfig,
    DRAMConfig,
    DRAMTimings,
    PADCConfig,
    PrefetcherConfig,
    SystemConfig,
    baseline_config,
)
from repro.sim import SimResult, System, simulate
from repro.workloads import ALL_BENCHMARKS, get_profile, random_mix, workload_mixes

__version__ = "1.0.0"

__all__ = [
    "ALL_POLICIES",
    "ALL_BENCHMARKS",
    "CacheConfig",
    "CoreConfig",
    "DRAMConfig",
    "DRAMTimings",
    "PADCConfig",
    "PrefetcherConfig",
    "SystemConfig",
    "SimResult",
    "System",
    "baseline_config",
    "simulate",
    "get_profile",
    "random_mix",
    "workload_mixes",
    "padc_storage_cost",
    "geometric_mean",
    "harmonic_speedup",
    "individual_speedups",
    "unfairness",
    "weighted_speedup",
    "__version__",
]
