"""repro — a reproduction of "Prefetch-Aware DRAM Controllers".

Lee, Mutlu, Narasiman and Patt, MICRO-41 / TR-HPS-2008-002 (2008).

The package implements the paper's Prefetch-Aware DRAM Controller (PADC:
Adaptive Prefetch Scheduling + Adaptive Prefetch Dropping), the rigid
scheduling baselines it is compared against, and the full evaluation
substrate: a cycle-level DDR3 DRAM model, L2 caches with MSHRs, stream /
stride / C/DC / Markov prefetchers, DDPF and FDP prefetch filters,
runahead execution, and synthetic SPEC-like workloads.

Quickstart::

    from repro import api, baseline_config

    config = baseline_config(num_cores=4, policy="padc")
    result = api.simulate(
        config, ["swim", "art", "libquantum", "milc"], telemetry=True
    )
    print(result.summary())
    print(result.trace.num_intervals, "telemetry intervals")

:mod:`repro.api` is the public front door — ``api.simulate`` runs one
configuration in-process, ``api.submit`` goes through the cached
parallel runtime, ``api.campaign`` drives whole sweeps.  ``simulate``
is also re-exported here for one-liners.
"""

from repro import api
from repro.api import simulate
from repro.controller import padc_storage_cost
from repro.metrics import (
    geometric_mean,
    harmonic_speedup,
    individual_speedups,
    unfairness,
    weighted_speedup,
)
from repro.params import (
    ALL_POLICIES,
    CacheConfig,
    CoreConfig,
    DRAMConfig,
    DRAMTimings,
    PADCConfig,
    PrefetcherConfig,
    SystemConfig,
    baseline_config,
)
from repro.sim import SimResult, System
from repro.telemetry import SimTrace
from repro.workloads import ALL_BENCHMARKS, get_profile, random_mix, workload_mixes

__version__ = "1.0.0"

__all__ = [
    "ALL_POLICIES",
    "ALL_BENCHMARKS",
    "CacheConfig",
    "CoreConfig",
    "DRAMConfig",
    "DRAMTimings",
    "PADCConfig",
    "PrefetcherConfig",
    "SystemConfig",
    "SimResult",
    "SimTrace",
    "System",
    "api",
    "baseline_config",
    "simulate",
    "get_profile",
    "random_mix",
    "workload_mixes",
    "padc_storage_cost",
    "geometric_mean",
    "harmonic_speedup",
    "individual_speedups",
    "unfairness",
    "weighted_speedup",
    "__version__",
]
